//! Document-throughput measurement (Table VIII) on top of the
//! production batch-alignment engine in [`briq_core::batch`] — the
//! single-machine stand-in for the paper's 10-executor Spark cluster.
//!
//! The timed path per page mirrors the production pipeline: HTML parsing,
//! page segmentation, then [`briq_core::batch::align_batch`] over the
//! segmented documents (mention/target extraction, classification,
//! filtering and global resolution on a work-stealing worker pool).

use briq_core::batch::{BatchConfig, StageTimings};
use briq_core::pipeline::Briq;
use briq_core::training::LabeledDocument;
use briq_corpus::page::render_page;
use briq_table::html::parse_page;
use briq_table::segment::{segment_page, SegmentConfig};
use briq_table::Document;
use std::time::Instant;

/// Throughput result for one batch of pages.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ThroughputResult {
    /// Pages processed.
    pub pages: usize,
    /// Documents produced by segmentation.
    pub documents: usize,
    /// Text mentions aligned or considered.
    pub mentions: usize,
    /// Wall-clock seconds.
    pub seconds: f64,
    /// Per-stage CPU-seconds summed over all documents (with more than
    /// one worker this exceeds `seconds`). Zero for the RWR-only system,
    /// which bypasses the staged pipeline.
    pub stages: StageTimings,
    /// Mean worker utilization of the batch pool (0 for RWR-only).
    pub utilization: f64,
}

impl ThroughputResult {
    /// Documents per minute — the unit of Table VIII.
    pub fn docs_per_minute(&self) -> f64 {
        if self.seconds <= 0.0 {
            return 0.0;
        }
        self.documents as f64 * 60.0 / self.seconds
    }
}

/// How to process each document in the throughput run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ThroughputSystem {
    /// The full BriQ pipeline, on the batch engine.
    Briq,
    /// The RWR-only baseline (no pruning — "fairly expensive", §VII-D).
    RwrOnly,
}

/// Materialize documents into HTML pages (a few documents per page, as on
/// the web).
pub fn build_pages(docs: &[LabeledDocument], docs_per_page: usize) -> Vec<String> {
    docs.chunks(docs_per_page.max(1))
        .map(|chunk| {
            let refs: Vec<&LabeledDocument> = chunk.iter().collect();
            render_page(&refs)
        })
        .collect()
}

/// Parse and segment every page into documents with batch-unique ids.
pub fn segment_pages(pages: &[String]) -> Vec<Document> {
    let mut docs = Vec::new();
    for html in pages {
        let page = parse_page(html);
        let mut segmented = segment_page(&page, &SegmentConfig::default(), docs.len());
        docs.append(&mut segmented);
    }
    docs
}

/// Run the throughput measurement over `pages` with `workers` threads.
///
/// The full-pipeline system runs on [`briq_core::batch::align_batch`], so
/// its alignments are bit-identical for every worker count; the timed
/// region covers parsing, segmentation, and the batch run.
pub fn measure(
    briq: &Briq,
    system: ThroughputSystem,
    pages: &[String],
    workers: usize,
) -> ThroughputResult {
    let start = Instant::now();
    let docs = segment_pages(pages);
    let (mentions, stages, utilization) = match system {
        ThroughputSystem::Briq => {
            let cfg = BatchConfig {
                jobs: workers.max(1),
                ..BatchConfig::default()
            };
            let report = briq.align_batch(&docs, &cfg);
            let mut mentions = 0usize;
            for (doc, dr) in docs.iter().zip(&report.documents) {
                mentions += dr
                    .alignments
                    .len()
                    .max(briq_core::mention::text_mentions(doc).len());
            }
            (mentions, report.stage_totals, report.mean_utilization())
        }
        ThroughputSystem::RwrOnly => (
            rwr_only_run(briq, &docs, workers),
            StageTimings::default(),
            0.0,
        ),
    };
    ThroughputResult {
        pages: pages.len(),
        documents: docs.len(),
        mentions,
        seconds: start.elapsed().as_secs_f64(),
        stages,
        utilization,
    }
}

/// The RWR-only baseline does not go through the staged `align_checked`
/// path, so it keeps a minimal cursor pool of its own.
fn rwr_only_run(briq: &Briq, docs: &[Document], workers: usize) -> usize {
    let run_doc = |doc: &Document| {
        let sd = briq.score_document(doc);
        let mentions = sd.mentions.len();
        let _ = briq_core::baselines::rwr_only_scored(briq, &sd);
        mentions
    };
    if workers <= 1 {
        return docs.iter().map(run_doc).sum();
    }
    let next = std::sync::atomic::AtomicUsize::new(0);
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|_| {
                let next = &next;
                scope.spawn(move || {
                    let mut m = 0usize;
                    loop {
                        let i = next.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                        let Some(doc) = docs.get(i) else { break };
                        m += run_doc(doc);
                    }
                    m
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap_or(0)).sum()
    })
}

/// One `--jobs` point of the bench-smoke comparison.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ThroughputPoint {
    /// Worker threads used.
    pub jobs: usize,
    /// Documents per minute at this worker count.
    pub docs_per_minute: f64,
    /// Wall-clock seconds.
    pub seconds: f64,
    /// Per-stage CPU-seconds.
    pub stages: StageTimings,
    /// Mean worker utilization, or `None` when the point effectively ran
    /// on a single worker (`min(jobs, host_cores) == 1`) — utilization of
    /// a one-worker pool is 1.0 by construction and reporting it would
    /// read as a measurement (mirrors [`ThroughputBench::speedup`]).
    pub utilization: Option<f64>,
    /// Classifier invocations actually executed per classify-second:
    /// `(pairs_scored - rows_deduped - pairs_pruned) / classify_s`
    /// ([`StageTimings::effective_pairs_per_sec`]).
    pub effective_pairs_per_sec: f64,
}

/// The perf-trajectory artifact written by CI's bench-smoke stage
/// (`BENCH_throughput.json`).
#[derive(Debug, Clone, PartialEq)]
pub struct ThroughputBench {
    /// Corpus seed (pages are byte-identical given the same seed).
    pub seed: usize,
    /// Pages in the workload.
    pub pages: usize,
    /// Documents after segmentation.
    pub documents: usize,
    /// Text mentions considered.
    pub mentions: usize,
    /// Cores available on the measuring host.
    pub host_cores: usize,
    /// Worker threads the parallel run asked for (`--jobs N`).
    pub jobs_requested: usize,
    /// Workers that could actually run concurrently:
    /// `min(jobs_requested, host_cores)`.
    pub jobs_effective: usize,
    /// The sequential baseline (`--jobs 1`).
    pub baseline: ThroughputPoint,
    /// The parallel run (`--jobs N`).
    pub parallel: ThroughputPoint,
    /// `parallel.docs_per_minute / baseline.docs_per_minute`, or `None`
    /// when the host cannot run two workers concurrently — a "speedup"
    /// measured on one core is pure scheduling overhead, not a scaling
    /// signal, and reporting a number (e.g. 0.92×) would misread as a
    /// parallelism regression.
    pub speedup: Option<f64>,
    /// Effective retrieval-index state of the measured runs (config knob
    /// AND the `BRIQ_NO_INDEX` escape hatch). Trajectory comparisons must
    /// never mix indexed and exhaustive numbers; `tools/bench_trend.sh`
    /// refuses to compare across a flip of this bit.
    pub index_enabled: bool,
    /// Mean retrieved candidates per mention on the sequential run;
    /// `None` on exhaustive runs. Strictly below
    /// [`ThroughputBench::cells_per_mention`] whenever the index drops
    /// anything.
    pub candidates_per_mention: Option<f64>,
    /// Mean mention/target pairs per mention under exhaustive pairing —
    /// the cell count the index retrieves against.
    pub cells_per_mention: f64,
    /// Fraction of the exhaustive oracle's surviving candidates the
    /// indexed path also produced. The recall contract makes this
    /// exactly `1.0`; CI gates on it. `None` when not measured
    /// (exhaustive runs).
    pub retrieval_recall: Option<f64>,
    /// Structured measurement caveats, each `key: detail`. Today the only
    /// producer is `jobs_clamped` (the host could not run the requested
    /// workers concurrently, so `speedup`/`utilization` are withheld);
    /// empty when the measurement is clean. Readers that previously had
    /// to infer the situation from a `null` speedup can key off this.
    pub warnings: Vec<String>,
    /// Cold-vs-warm timings of the same workload through the versioned
    /// [`briq_core::store::AlignmentStore`] (DESIGN.md §15), sequential
    /// runs. `None` when the store was disabled or not measured.
    pub store: Option<StoreBench>,
}

/// Cold-vs-warm comparison of one workload through the alignment store:
/// the first (cold) pass computes and caches everything, the second
/// (warm, unchanged corpus) pass should serve every document from cache
/// and skip classify/filter/resolve entirely.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StoreBench {
    /// Wall-clock seconds of the cold pass (cache empty).
    pub cold_seconds: f64,
    /// Wall-clock seconds of the warm pass (unchanged corpus).
    pub warm_seconds: f64,
    /// `cold_seconds / warm_seconds` — the re-alignment speedup a fully
    /// warm store buys on an unchanged corpus.
    pub warm_speedup: f64,
    /// Store hit rate over the warm pass; `1.0` when nothing changed.
    pub hit_rate: f64,
    /// Mentions re-run through classify/filter on the warm pass; `0`
    /// when nothing changed.
    pub mentions_realigned: u64,
    /// High-water mark of the store's resident artifact bytes.
    pub bytes_peak: u64,
    /// Durable-store measurement (DESIGN.md §16): the same workload
    /// persisted to disk, the process "restarted" (store dropped and
    /// reopened from the same directory), and re-driven warm. `None`
    /// when persistence was not measured.
    pub persist: Option<PersistBench>,
}

/// Restart-warmed measurement of the durable store backing: how long
/// recovery took, what it recovered, and what the on-disk footprint was.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PersistBench {
    /// Wall-clock seconds to open the store directory and replay
    /// snapshot + novelty log back into memory.
    pub recover_s: f64,
    /// Entries recovered by the reopen.
    pub recovered_entries: u64,
    /// Wall-clock seconds of the restart-warmed pass (recovered cache,
    /// unchanged corpus) — the durable analogue of `warm_seconds`.
    pub restart_warm_seconds: f64,
    /// Store hit rate over the restart-warmed pass; `1.0` when the
    /// recovery was complete and nothing changed.
    pub restart_hit_rate: f64,
    /// Novelty-log bytes on disk after the cold persisted pass.
    pub log_bytes: u64,
    /// Snapshot bytes on disk after the end-of-pass compaction.
    pub snapshot_bytes: u64,
    /// Entries evicted during the measurement (0 unless a byte budget
    /// was configured).
    pub evictions: u64,
}

impl ThroughputBench {
    /// Compare a sequential and a parallel run of the same workload.
    /// `host_cores` comes from [`std::thread::available_parallelism`] via
    /// [`ThroughputBench::from_runs`]; this variant takes it explicitly
    /// so tests can pin it.
    pub fn from_runs_on_host(
        seed: usize,
        host_cores: usize,
        baseline: (usize, ThroughputResult),
        parallel: (usize, ThroughputResult),
    ) -> ThroughputBench {
        let point = |(jobs, r): (usize, ThroughputResult)| ThroughputPoint {
            jobs,
            docs_per_minute: r.docs_per_minute(),
            seconds: r.seconds,
            stages: r.stages,
            utilization: if jobs.min(host_cores.max(1)) >= 2 {
                Some(r.utilization)
            } else {
                None
            },
            effective_pairs_per_sec: r.stages.effective_pairs_per_sec(),
        };
        let jobs_requested = parallel.0;
        let jobs_effective = jobs_requested.min(host_cores.max(1));
        let base = baseline.1;
        let speedup = if jobs_effective >= 2 && base.docs_per_minute() > 0.0 {
            Some(parallel.1.docs_per_minute() / base.docs_per_minute())
        } else {
            None
        };
        // Effective index state is read off the measured counters: an
        // exhaustive run retrieves nothing. `with_retrieval` lets the
        // caller state it explicitly (and attach a measured recall).
        let mut warnings = Vec::new();
        if jobs_effective < jobs_requested {
            warnings.push(format!(
                "jobs_clamped: requested {jobs_requested} workers but the \
                 {host_cores}-core host runs {jobs_effective} concurrently; \
                 speedup and utilization are withheld"
            ));
        }
        let index_enabled = base.stages.candidates_retrieved > 0;
        let candidates_per_mention = if index_enabled && base.mentions > 0 {
            Some(base.stages.candidates_retrieved as f64 / base.mentions as f64)
        } else {
            None
        };
        let cells_per_mention = if base.mentions > 0 {
            base.stages.pairs_scored as f64 / base.mentions as f64
        } else {
            0.0
        };
        ThroughputBench {
            seed,
            pages: base.pages,
            documents: base.documents,
            mentions: base.mentions,
            host_cores,
            jobs_requested,
            jobs_effective,
            baseline: point(baseline),
            parallel: point(parallel),
            speedup,
            index_enabled,
            candidates_per_mention,
            cells_per_mention,
            retrieval_recall: None,
            warnings,
            store: None,
        }
    }

    /// Attach a cold-vs-warm store measurement (`None` = store disabled
    /// or not measured).
    pub fn with_store(mut self, store: Option<StoreBench>) -> ThroughputBench {
        self.store = store;
        self
    }

    /// Pin the effective index state explicitly (config AND environment,
    /// which the measuring binary knows and the counters can only infer)
    /// and attach the measured retrieval recall.
    pub fn with_retrieval(mut self, index_enabled: bool, recall: Option<f64>) -> ThroughputBench {
        self.index_enabled = index_enabled;
        if !index_enabled {
            self.candidates_per_mention = None;
        }
        self.retrieval_recall = recall;
        self
    }

    /// [`ThroughputBench::from_runs_on_host`] with the measuring host's
    /// own core count.
    pub fn from_runs(
        seed: usize,
        baseline: (usize, ThroughputResult),
        parallel: (usize, ThroughputResult),
    ) -> ThroughputBench {
        let host_cores = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1);
        Self::from_runs_on_host(seed, host_cores, baseline, parallel)
    }
}

briq_json::json_struct!(ThroughputPoint {
    jobs,
    docs_per_minute,
    seconds,
    stages,
    utilization,
    effective_pairs_per_sec
});
briq_json::json_struct!(ThroughputBench {
    seed,
    pages,
    documents,
    mentions,
    host_cores,
    jobs_requested,
    jobs_effective,
    baseline,
    parallel,
    speedup,
    index_enabled,
    candidates_per_mention,
    cells_per_mention,
    retrieval_recall,
    warnings,
    store,
});
briq_json::json_struct!(StoreBench {
    cold_seconds,
    warm_seconds,
    warm_speedup,
    hit_rate,
    mentions_realigned,
    bytes_peak,
    persist,
});
briq_json::json_struct!(PersistBench {
    recover_s,
    recovered_entries,
    restart_warm_seconds,
    restart_hit_rate,
    log_bytes,
    snapshot_bytes,
    evictions,
});

#[cfg(test)]
mod tests {
    use super::*;
    use briq_core::pipeline::BriqConfig;
    use briq_corpus::corpus::{generate_corpus, CorpusConfig};

    fn docs() -> Vec<LabeledDocument> {
        generate_corpus(&CorpusConfig::small(31)).documents
    }

    #[test]
    fn pages_built_and_processed() {
        let docs = docs();
        let pages = build_pages(&docs[..12], 3);
        assert_eq!(pages.len(), 4);
        let briq = Briq::untrained(BriqConfig::default());
        let r = measure(&briq, ThroughputSystem::Briq, &pages, 1);
        assert_eq!(r.pages, 4);
        assert!(r.documents >= 8, "segmented {} documents", r.documents);
        assert!(r.docs_per_minute() > 0.0);
        assert!(
            r.stages.total_s() > 0.0,
            "stage timings missing: {:?}",
            r.stages
        );
    }

    #[test]
    fn parallel_matches_serial_counts() {
        let docs = docs();
        let pages = build_pages(&docs[..8], 2);
        let briq = Briq::untrained(BriqConfig::default());
        let serial = measure(&briq, ThroughputSystem::Briq, &pages, 1);
        let parallel = measure(&briq, ThroughputSystem::Briq, &pages, 4);
        assert_eq!(serial.documents, parallel.documents);
        assert_eq!(serial.mentions, parallel.mentions);
        assert!(parallel.utilization > 0.0);
    }

    #[test]
    fn segmented_documents_have_unique_ids() {
        let docs = docs();
        let pages = build_pages(&docs[..9], 3);
        let segmented = segment_pages(&pages);
        let mut ids: Vec<usize> = segmented.iter().map(|d| d.id).collect();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(
            ids.len(),
            segmented.len(),
            "duplicate document ids across pages"
        );
    }

    #[test]
    fn rwr_only_still_measures() {
        let docs = docs();
        let pages = build_pages(&docs[..4], 2);
        let briq = Briq::untrained(BriqConfig::default());
        let r = measure(&briq, ThroughputSystem::RwrOnly, &pages, 2);
        assert!(r.documents > 0);
        assert!(r.mentions > 0);
        assert_eq!(r.stages, StageTimings::default());
    }

    #[test]
    fn bench_report_round_trips_as_json() {
        let docs = docs();
        let pages = build_pages(&docs[..6], 3);
        let briq = Briq::untrained(BriqConfig::default());
        let base = measure(&briq, ThroughputSystem::Briq, &pages, 1);
        let par = measure(&briq, ThroughputSystem::Briq, &pages, 2);
        // Pinned to a 4-core host: the parallel point is genuine, so a
        // speedup ratio is reported.
        let bench = ThroughputBench::from_runs_on_host(31, 4, (1, base), (2, par));
        assert_eq!(bench.host_cores, 4);
        assert_eq!(bench.jobs_requested, 2);
        assert_eq!(bench.jobs_effective, 2);
        assert!(bench.speedup.expect("multi-core host reports a ratio") > 0.0);
        assert!(
            bench.warnings.is_empty(),
            "clean run warns: {:?}",
            bench.warnings
        );
        // The one-worker baseline has no honest utilization number; the
        // genuine two-worker point does.
        assert_eq!(bench.baseline.utilization, None);
        assert!(bench.parallel.utilization.expect("real parallel point") > 0.0);
        // Default config runs indexed: candidate sets are reported and
        // strictly smaller than the exhaustive pairing.
        assert!(bench.index_enabled, "default config runs indexed");
        let cpm = bench
            .candidates_per_mention
            .expect("indexed run reports candidates per mention");
        assert!(
            cpm < bench.cells_per_mention,
            "candidates/mention {cpm} not below cells/mention {}",
            bench.cells_per_mention
        );
        let bench = bench.with_retrieval(true, Some(1.0));
        assert_eq!(bench.retrieval_recall, Some(1.0));
        let s = briq_json::to_string_pretty(&bench);
        let back: ThroughputBench = briq_json::from_str(&s).expect("round-trips");
        assert_eq!(bench, back);
        let exhaustive = back.with_retrieval(false, None);
        assert_eq!(exhaustive.candidates_per_mention, None);
        assert_eq!(exhaustive.retrieval_recall, None);
    }

    #[test]
    fn single_core_host_withholds_speedup() {
        let docs = docs();
        let pages = build_pages(&docs[..6], 3);
        let briq = Briq::untrained(BriqConfig::default());
        let base = measure(&briq, ThroughputSystem::Briq, &pages, 1);
        let par = measure(&briq, ThroughputSystem::Briq, &pages, 4);
        let bench = ThroughputBench::from_runs_on_host(31, 1, (1, base), (4, par));
        assert_eq!(bench.jobs_requested, 4);
        assert_eq!(bench.jobs_effective, 1, "one core caps effective workers");
        assert_eq!(bench.speedup, None, "no honest ratio exists on one core");
        // The clamp is reported as a structured warning, not inferred
        // from the null.
        assert_eq!(bench.warnings.len(), 1, "warnings: {:?}", bench.warnings);
        assert!(
            bench.warnings[0].starts_with("jobs_clamped: "),
            "{:?}",
            bench.warnings
        );
        // Both points are effectively single-worker on one core, so
        // utilization is withheld like the speedup ratio.
        assert_eq!(bench.baseline.utilization, None);
        assert_eq!(bench.parallel.utilization, None);
        // `null` survives the JSON round trip.
        let s = briq_json::to_string_pretty(&bench);
        assert!(s.contains("\"speedup\": null"), "{s}");
        assert!(s.contains("\"utilization\": null"), "{s}");
        assert!(s.contains("jobs_clamped"), "{s}");
        let back: ThroughputBench = briq_json::from_str(&s).expect("round-trips");
        assert_eq!(bench, back);
    }

    #[test]
    fn zero_seconds_guard() {
        let r = ThroughputResult {
            pages: 0,
            documents: 0,
            mentions: 0,
            seconds: 0.0,
            stages: StageTimings::default(),
            utilization: 0.0,
        };
        assert_eq!(r.docs_per_minute(), 0.0);
    }
}
