//! `briq-eval` — regenerate the paper's evaluation tables.
//!
//! Usage: `briq-eval <experiment> [--docs N] [--seed S] [--metrics FILE]`
//! where `<experiment>` is one of `table1` … `table9`, `ablation-extra`,
//! or `all`. With `--metrics FILE`, corpus-generation, training, and
//! evaluation spans/counters are recorded and the merged registry is
//! written to `FILE` as JSON Lines (a summary table goes to stderr);
//! stdout is byte-identical with or without it.
//!
//! `briq-eval throughput [--docs N] [--seed S] [--jobs J] [--out FILE]`
//! runs the batch-engine throughput smoke (sequential vs `J` workers on
//! the same seeded page corpus) and, with `--out`, writes the comparison
//! as the `BENCH_throughput.json` perf-trajectory artifact used by CI.

use briq_bench::experiments::{
    evaluate_system, evaluate_system_observed, filtering_stats, prepare, prepare_observed,
    test_documents, SetupConfig, SystemKind,
};
use briq_bench::report::{fmt, per_type_table, TextTable, TYPE_ORDER};
use briq_bench::throughput::{build_pages, measure, ThroughputSystem};
use briq_core::obs::Recorder;
use briq_core::pipeline::{Briq, BriqConfig};
use briq_core::resolution::ResolutionConfig;
use briq_core::FeatureMask;
use briq_corpus::corpus::{generate_corpus, CorpusConfig};
use briq_corpus::{Domain, Perturbation};
use briq_table::stats::average_stats;
use briq_table::virtual_cells::VirtualCellConfig;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let experiment = args.first().map(String::as_str).unwrap_or("all");
    let docs = flag_value(&args, "--docs").unwrap_or(400);
    let seed = flag_value(&args, "--seed").unwrap_or(20190408) as u64;

    let run = |name: &str| experiment == "all" || experiment == name;

    // `--metrics FILE` records corpus-generation, training, and
    // evaluation spans/counters and writes the registry as JSONL; table
    // output on stdout is byte-identical with or without it.
    let metrics_out = string_flag(&args, "--metrics");
    let rec = if metrics_out.is_some() {
        Recorder::enabled()
    } else {
        Recorder::disabled()
    };

    let mut setup = None;
    let mut ensure_setup = || {
        prepare_observed(
            &SetupConfig {
                n_documents: docs,
                seed,
                mask: FeatureMask::all(),
            },
            &rec,
        )
    };

    if run("table1") {
        let s = setup.get_or_insert_with(&mut ensure_setup);
        table1(s);
    }
    if run("table2") {
        let s = setup.get_or_insert_with(&mut ensure_setup);
        table2(s, &rec);
    }
    if run("table3") || run("table4") || run("table5") {
        let s = setup.get_or_insert_with(&mut ensure_setup);
        tables_3_to_5(s, experiment);
    }
    if run("table6") {
        let s = setup.get_or_insert_with(&mut ensure_setup);
        table6(s);
    }
    if run("table7") {
        table7(docs, seed);
    }
    if run("table8") {
        table8(docs, seed);
    }
    if run("table9") {
        table9(docs, seed);
    }
    if run("ablation-extra") {
        ablation_extra(docs, seed);
    }
    if run("qkb") {
        let s = setup.get_or_insert_with(&mut ensure_setup);
        qkb_experiment(s);
    }
    if run("ilp") {
        let s = setup.get_or_insert_with(&mut ensure_setup);
        ilp_experiment(s);
    }
    if run("analysis") {
        let s = setup.get_or_insert_with(&mut ensure_setup);
        analysis_experiment(s);
    }
    if run("extended") {
        extended_experiment(docs, seed);
    }
    if experiment == "throughput" {
        let jobs = flag_value(&args, "--jobs").unwrap_or_else(|| {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(4)
        });
        let out = string_flag(&args, "--out");
        throughput_bench(docs, seed, jobs, out.as_deref());
    }

    if let Some(path) = metrics_out {
        drop(setup);
        match rec.finish() {
            Some(trace) => {
                let m = &trace.metrics;
                if let Err(e) = std::fs::write(&path, m.to_jsonl()) {
                    eprintln!("cannot write metrics to {path}: {e}");
                    std::process::exit(1);
                }
                eprint!("{}", m.summary_table());
                eprintln!("metrics written to {path}");
            }
            None => eprintln!("no metrics recorded (nothing ran?)"),
        }
    }
}

/// Bench-smoke for the batch engine: the same seeded page corpus aligned
/// at `--jobs 1` and `--jobs N`, reported as docs/min, speedup, and
/// per-stage CPU-seconds. With `--out`, the comparison is written as a
/// JSON artifact so CI can track the perf trajectory per PR.
fn throughput_bench(docs: usize, seed: u64, jobs: usize, out: Option<&str>) {
    use briq_bench::throughput::ThroughputBench;

    // Untrained prior: the smoke measures engine throughput and scaling,
    // not model quality, and must stay fast enough for a per-PR gate.
    let briq = Briq::untrained(BriqConfig::default());
    let pages = briq_corpus::page::corpus_pages(
        &CorpusConfig {
            n_documents: docs,
            seed,
            ..Default::default()
        },
        3,
    );
    let baseline = measure(&briq, ThroughputSystem::Briq, &pages, 1);
    let parallel = measure(&briq, ThroughputSystem::Briq, &pages, jobs);

    // Effective index state: the config knob AND the BRIQ_NO_INDEX
    // escape hatch. It is stamped into the artifact so trajectory
    // comparisons can never silently mix indexed and exhaustive numbers.
    let index_enabled =
        briq.cfg.use_index && std::env::var_os("BRIQ_NO_INDEX").is_none_or(|v| v != "1");
    // Retrieval recall vs the exhaustive oracle: every candidate pair
    // surviving the oracle's filter must also survive the indexed path.
    // The recall contract makes this exactly 1.0; CI gates on it.
    let recall = index_enabled.then(|| {
        let mut oracle = Briq::untrained(BriqConfig::default());
        oracle.cfg.use_index = false;
        let docs = briq_bench::throughput::segment_pages(&pages);
        let (mut surviving, mut recalled) = (0usize, 0usize);
        for doc in &docs {
            let (_, _, indexed) = briq.align_detailed(doc);
            let (_, _, exhaustive) = oracle.align_detailed(doc);
            for (ci, co) in indexed.iter().zip(&exhaustive) {
                let kept: std::collections::BTreeSet<usize> = ci.iter().map(|c| c.target).collect();
                for c in co {
                    surviving += 1;
                    if kept.contains(&c.target) {
                        recalled += 1;
                    }
                }
            }
        }
        if surviving == 0 {
            1.0
        } else {
            recalled as f64 / surviving as f64
        }
    });

    // Cold-vs-warm store passes: the same workload twice against one
    // AlignmentStore, sequentially (jobs 1) so the delta is the store's,
    // not the scheduler's. The warm pass should be near-pure cache
    // service: hit rate 1.0, zero mentions realigned.
    let store_bench = briq.store_effective().then(|| {
        use briq_core::store::AlignmentStore;
        let seg_docs = briq_bench::throughput::segment_pages(&pages);
        let store = AlignmentStore::for_system(&briq);
        let cfg = briq_core::batch::BatchConfig::with_jobs(1);
        let t0 = std::time::Instant::now();
        briq.align_batch_stored(&seg_docs, &cfg, &store, None);
        let cold_seconds = t0.elapsed().as_secs_f64();
        store.reset_counters();
        let t1 = std::time::Instant::now();
        briq.align_batch_stored(&seg_docs, &cfg, &store, None);
        let warm_seconds = t1.elapsed().as_secs_f64();
        // Durable-store measurement: the same cold pass against a
        // persistent store in a scratch directory, then a simulated
        // restart (drop + reopen) and a restart-warmed re-drive. The
        // interesting numbers are recovery time and the hit rate the
        // recovered cache serves.
        let persist = (|| {
            use briq_core::store::StoreOptions;
            let dir =
                std::env::temp_dir().join(format!("briq-bench-persist-{}", std::process::id()));
            let _ = std::fs::remove_dir_all(&dir);
            let opts = StoreOptions {
                dir: Some(dir.clone()),
                ..StoreOptions::default()
            };
            let pstore = AlignmentStore::with_options(&briq, &opts).ok()?;
            briq.align_batch_stored(&seg_docs, &cfg, &pstore, None);
            let log_bytes = pstore.log_bytes();
            pstore.snapshot().ok()?;
            let snapshot_bytes = pstore.snapshot_bytes();
            let evictions = pstore.evictions();
            drop(pstore);
            // "Restart": a fresh store recovers everything from disk.
            let recovered = AlignmentStore::with_options(&briq, &opts).ok()?;
            let t2 = std::time::Instant::now();
            briq.align_batch_stored(&seg_docs, &cfg, &recovered, None);
            let restart_warm_seconds = t2.elapsed().as_secs_f64();
            let out = briq_bench::throughput::PersistBench {
                recover_s: recovered.recover_seconds(),
                recovered_entries: recovered.recovered_entries(),
                restart_warm_seconds,
                restart_hit_rate: recovered.hit_rate(),
                log_bytes,
                snapshot_bytes,
                evictions,
            };
            let _ = std::fs::remove_dir_all(&dir);
            Some(out)
        })();
        briq_bench::throughput::StoreBench {
            cold_seconds,
            warm_seconds,
            warm_speedup: cold_seconds / warm_seconds.max(1e-9),
            hit_rate: store.hit_rate(),
            mentions_realigned: store.mentions_realigned(),
            bytes_peak: store.bytes_peak(),
            persist,
        }
    });

    let bench = ThroughputBench::from_runs(seed as usize, (1, baseline), (jobs, parallel))
        .with_retrieval(index_enabled, recall)
        .with_store(store_bench);

    println!(
        "== Batch-engine throughput smoke (seed {seed}, {} pages, {} host cores) ==",
        bench.pages, bench.host_cores
    );
    let mut t = TextTable::new(&[
        "jobs",
        "docs/min",
        "seconds",
        "extract s",
        "classify s",
        "filter s",
        "resolve s",
        "pairs/s",
        "eff pairs/s",
        "util",
    ]);
    for p in [&bench.baseline, &bench.parallel] {
        t.row(vec![
            p.jobs.to_string(),
            format!("{:.0}", p.docs_per_minute),
            format!("{:.2}", p.seconds),
            format!("{:.2}", p.stages.extract_s),
            format!("{:.2}", p.stages.classify_s),
            format!("{:.2}", p.stages.filter_s),
            format!("{:.2}", p.stages.resolve_s),
            format!("{:.0}", p.stages.scored_pairs_per_sec()),
            format!("{:.0}", p.effective_pairs_per_sec),
            match p.utilization {
                Some(u) => format!("{u:.2}"),
                None => "n/a".to_string(),
            },
        ]);
    }
    println!("{}", t.render());
    match (bench.index_enabled, bench.candidates_per_mention) {
        (true, Some(cpm)) => println!(
            "retrieval index: on — {cpm:.1} candidates/mention vs {:.1} cells/mention, recall {}",
            bench.cells_per_mention,
            match bench.retrieval_recall {
                Some(r) => format!("{r:.4}"),
                None => "n/a".to_string(),
            }
        ),
        _ => println!(
            "retrieval index: off — exhaustive pairing at {:.1} cells/mention",
            bench.cells_per_mention
        ),
    }
    match bench.speedup {
        Some(s) => println!(
            "speedup at --jobs {} ({} effective): {s:.2}x",
            bench.jobs_requested, bench.jobs_effective
        ),
        None => println!(
            "speedup: n/a (--jobs {} on a {}-core host gives {} effective worker(s); need >= 2)",
            bench.jobs_requested, bench.host_cores, bench.jobs_effective
        ),
    }
    match &bench.store {
        Some(s) => println!(
            "alignment store: cold {:.2}s -> warm {:.4}s ({:.0}x), hit rate {:.3}, \
             {} mentions realigned, {} bytes peak",
            s.cold_seconds,
            s.warm_seconds,
            s.warm_speedup,
            s.hit_rate,
            s.mentions_realigned,
            s.bytes_peak
        ),
        None => println!("alignment store: off (full recompute each run)"),
    }
    if let Some(p) = bench.store.as_ref().and_then(|s| s.persist.as_ref()) {
        println!(
            "durable store: recovered {} entries in {:.4}s, restart-warm {:.4}s \
             (hit rate {:.3}), log {} B, snapshot {} B, {} evictions",
            p.recovered_entries,
            p.recover_s,
            p.restart_warm_seconds,
            p.restart_hit_rate,
            p.log_bytes,
            p.snapshot_bytes,
            p.evictions
        );
    }
    for w in &bench.warnings {
        println!("warning: {w}");
    }

    if let Some(path) = out {
        let json = briq_json::to_string_pretty(&bench);
        match std::fs::write(path, json + "\n") {
            Ok(()) => println!("wrote {path}"),
            Err(e) => {
                eprintln!("cannot write {path}: {e}");
                std::process::exit(1);
            }
        }
    }
}

fn string_flag(args: &[String], flag: &str) -> Option<String> {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1))
        .cloned()
}

/// Extended aggregates (min/max ranking mentions): the framework
/// capability of §II-A beyond the evaluated four functions.
fn extended_experiment(docs: usize, seed: u64) {
    use briq_core::evaluate::EvalReport;
    use briq_core::training::LabeledDocument;
    use briq_corpus::annotate::{annotate, AnnotatorConfig};
    use briq_corpus::corpus::{generate_corpus, CorpusConfig, MentionWeights};
    use briq_ml::split::random_split;

    println!("== Extended aggregates: ranking mentions → min/max virtual cells ==");
    let corpus_cfg = CorpusConfig {
        n_documents: docs,
        seed,
        weights: MentionWeights {
            single: 0.62,
            ranking: 0.06,
            ..Default::default()
        },
        ..Default::default()
    };
    let corpus = generate_corpus(&corpus_cfg);
    let mut documents = corpus.documents;
    annotate(&mut documents, &AnnotatorConfig::default());

    let split = random_split(documents.len(), 0.1, 0.1, seed ^ 0x5eed);
    let train: Vec<LabeledDocument> = split.train.iter().map(|&i| documents[i].clone()).collect();
    let val: Vec<LabeledDocument> = split
        .validation
        .iter()
        .map(|&i| documents[i].clone())
        .collect();

    let mut cfg = BriqConfig::default();
    cfg.virtual_cells.extended = true;
    let briq = Briq::train(cfg, &train, &val);

    let mut report = EvalReport::default();
    for &i in &split.test {
        let ld = &documents[i];
        report.add_document(&briq.align(&ld.document), &ld.gold);
    }
    let mut t = TextTable::new(&["type", "recall", "precision", "F1"]);
    for k in ["max", "min", "sum", "single-cell"] {
        let p = report.prf_for(k);
        t.row(vec![
            k.to_string(),
            fmt(p.recall),
            fmt(p.precision),
            fmt(p.f1),
        ]);
    }
    let o = report.overall();
    t.row(vec![
        "overall".into(),
        fmt(o.recall),
        fmt(o.precision),
        fmt(o.f1),
    ]);
    println!("{}", t.render());
}

/// The QKB baseline (§VII-D): exact-match linking through a small quantity
/// knowledge base — demonstrates why the paper dismissed it.
fn qkb_experiment(s: &Setup) {
    println!("== QKB baseline (exact-match canonicalization, §VII-D) ==");
    let docs = test_documents(s, Perturbation::Original);
    let mut qkb = briq_core::evaluate::EvalReport::default();
    let mut briq_rep = briq_core::evaluate::EvalReport::default();
    for ld in &docs {
        qkb.add_document(
            &briq_core::baselines::qkb_only(&s.briq, &ld.document),
            &ld.gold,
        );
        briq_rep.add_document(&s.briq.align(&ld.document), &ld.gold);
    }
    let mut t = TextTable::new(&["system", "recall", "precision", "F1"]);
    let q = qkb.overall();
    let b = briq_rep.overall();
    t.row(vec![
        "QKB".into(),
        fmt(q.recall),
        fmt(q.precision),
        fmt(q.f1),
    ]);
    t.row(vec![
        "BriQ".into(),
        fmt(b.recall),
        fmt(b.precision),
        fmt(b.f1),
    ]);
    println!("{}", t.render());
    println!("(low QKB recall = limited unit coverage + exact matching only)\n");
}

/// Exact ILP-style resolution vs the random walk: quality and cost
/// (§VI: the ILP approach "did not scale sufficiently well").
fn ilp_experiment(s: &Setup) {
    use briq_core::resolution_ilp::{resolve_ilp, IlpConfig};
    use std::time::Instant;

    println!("== ILP vs RWR global resolution (§VI) ==");
    let docs = test_documents(s, Perturbation::Original);
    let mut rwr_rep = briq_core::evaluate::EvalReport::default();
    let mut ilp_rep = briq_core::evaluate::EvalReport::default();
    let mut rwr_time = 0.0f64;
    let mut ilp_time = 0.0f64;
    let mut ilp_nodes = 0usize;
    let mut exhausted = 0usize;

    for ld in &docs {
        let t0 = Instant::now();
        let alignments = s.briq.align(&ld.document);
        rwr_time += t0.elapsed().as_secs_f64();
        rwr_rep.add_document(&alignments, &ld.gold);

        let sd = s.briq.score_document(&ld.document);
        let (candidates, _) = s.briq.filter(&sd);
        let t1 = Instant::now();
        let sol = resolve_ilp(&candidates, &sd.targets, &IlpConfig::default());
        ilp_time += t1.elapsed().as_secs_f64();
        ilp_nodes += sol.nodes;
        if sol.budget_exhausted {
            exhausted += 1;
        }
        let ilp_alignments: Vec<briq_core::Alignment> = sol
            .assignment
            .iter()
            .enumerate()
            .filter_map(|(mi, a)| {
                a.map(|ti| briq_core::Alignment {
                    mention_start: sd.mentions[mi].quantity.start,
                    mention_end: sd.mentions[mi].quantity.end,
                    mention_raw: sd.mentions[mi].quantity.raw.clone(),
                    target: sd.targets[ti].clone(),
                    score: 1.0,
                })
            })
            .collect();
        ilp_rep.add_document(&ilp_alignments, &ld.gold);
    }

    // The paper's setting: exact inference over the *unpruned* pair space
    // (classifier scores, no adaptive filtering) — this is where ILP
    // stops scaling.
    let mut raw_time = 0.0f64;
    let mut raw_nodes = 0usize;
    let mut raw_exhausted = 0usize;
    let raw_budget = IlpConfig {
        node_budget: 300_000,
        ..Default::default()
    };
    for ld in docs.iter().take(10) {
        let sd = s.briq.score_document(&ld.document);
        let candidates: Vec<Vec<briq_core::filtering::Candidate>> = sd
            .scored
            .iter()
            .map(|row| {
                let mut cs: Vec<briq_core::filtering::Candidate> = row
                    .iter()
                    .map(|&(target, score)| briq_core::filtering::Candidate { target, score })
                    .collect();
                cs.sort_by(|a, b| {
                    b.score
                        .partial_cmp(&a.score)
                        .unwrap_or(std::cmp::Ordering::Equal)
                });
                cs
            })
            .collect();
        let t2 = std::time::Instant::now();
        let sol = resolve_ilp(&candidates, &sd.targets, &raw_budget);
        raw_time += t2.elapsed().as_secs_f64();
        raw_nodes += sol.nodes;
        if sol.budget_exhausted {
            raw_exhausted += 1;
        }
    }

    let mut t = TextTable::new(&["resolver", "F1", "total seconds", "notes"]);
    let r = rwr_rep.overall();
    let i = ilp_rep.overall();
    t.row(vec![
        "RWR (Algorithm 1)".into(),
        fmt(r.f1),
        format!("{rwr_time:.2}"),
        "-".into(),
    ]);
    t.row(vec![
        "ILP on filtered pairs".into(),
        fmt(i.f1),
        format!("{ilp_time:.2}"),
        format!("{ilp_nodes} nodes, {exhausted} budget-exhausted docs"),
    ]);
    t.row(vec![
        "ILP on unpruned pairs".into(),
        "-".into(),
        format!("{raw_time:.2} (first 10 docs only)"),
        format!("{raw_nodes} nodes, {raw_exhausted}/10 budget-exhausted"),
    ]);
    println!("{}", t.render());
    println!("(the unpruned setting is the one the paper abandoned, §VI)\n");
}

/// Feature-importance and calibration analysis of the trained classifier.
fn analysis_experiment(s: &Setup) {
    use briq_core::training::{build_training_examples, examples_to_dataset};

    println!("== Classifier analysis: permutation importance & calibration ==");
    let docs = test_documents(s, Perturbation::Original);
    let briq_cfg = BriqConfig::default();
    let (examples, _) = build_training_examples(&docs, &briq_cfg.virtual_cells, &briq_cfg.context);
    let data = examples_to_dataset(&examples);

    // permutation importance of the trained prior
    let imp = briq_ml::permutation_importance(&data, |r| s.briq.prior(r), 3, 11);
    let names = [
        "f1 surface",
        "f2 local words",
        "f3 global words",
        "f4 local phrases",
        "f5 global phrases",
        "f6 rel diff",
        "f7 raw rel diff",
        "f8 unit match",
        "f9 scale diff",
        "f10 precision diff",
        "f11 approx",
        "f12 agg match",
    ];
    let mut t = TextTable::new(&["feature", "AUC drop"]);
    let mut order: Vec<usize> = (0..imp.len()).collect();
    order.sort_by(|&a, &b| {
        imp[b]
            .partial_cmp(&imp[a])
            .unwrap_or(std::cmp::Ordering::Equal)
    });
    for i in order {
        t.row(vec![
            names.get(i).unwrap_or(&"?").to_string(),
            format!("{:+.4}", imp[i]),
        ]);
    }
    println!("{}", t.render());

    // calibration of σ on held-out pairs
    let scores: Vec<f64> = data.features.iter().map(|r| s.briq.prior(r)).collect();
    let bins = briq_ml::calibration_curve(&scores, &data.labels, 10);
    let ece = briq_ml::expected_calibration_error(&bins);
    let mut t = TextTable::new(&["mean predicted", "observed", "count"]);
    for b in &bins {
        t.row(vec![
            format!("{:.2}", b.mean_predicted),
            format!("{:.2}", b.observed),
            b.count.to_string(),
        ]);
    }
    println!("{}", t.render());
    println!("expected calibration error: {ece:.4} (vote fractions, §IV-A)\n");
}

fn flag_value(args: &[String], flag: &str) -> Option<usize> {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok())
}

type Setup = briq_bench::experiments::ExperimentSetup;

fn table1(s: &Setup) {
    println!(
        "== Table I: classifier training data (annotator kappa {:.4}) ==",
        s.kappa
    );
    let mut t = TextTable::new(&["type", "#pos", "#neg"]);
    for k in TYPE_ORDER {
        let (p, n) = s.breakdown.by_type.get(k).copied().unwrap_or((0, 0));
        t.row(vec![k.to_string(), p.to_string(), n.to_string()]);
    }
    let (p, n) = s.breakdown.totals();
    t.row(vec!["total".into(), p.to_string(), n.to_string()]);
    println!("{}", t.render());
}

fn table2(s: &Setup, rec: &Recorder) {
    println!("== Table II: results for original, truncated and rounded mentions ==");
    let mut t = TextTable::new(&[
        "", "RF", "RWR", "BriQ", "RF(tr)", "RWR(tr)", "BriQ(tr)", "RF(rd)", "RWR(rd)", "BriQ(rd)",
    ]);
    let mut rows = vec![
        vec!["recall".to_string()],
        vec!["prec.".to_string()],
        vec!["F1".to_string()],
    ];
    for p in Perturbation::ALL {
        let docs = test_documents(s, p);
        for sys in SystemKind::ALL {
            let r = evaluate_system_observed(&s.briq, sys, &docs, rec);
            let o = r.overall();
            rows[0].push(fmt(o.recall));
            rows[1].push(fmt(o.precision));
            rows[2].push(fmt(o.f1));
        }
    }
    for r in rows {
        t.row(r);
    }
    println!("{}", t.render());
}

fn tables_3_to_5(s: &Setup, experiment: &str) {
    let docs = test_documents(s, Perturbation::Original);
    for (sys, table) in [
        (SystemKind::Rf, "table3"),
        (SystemKind::Rwr, "table4"),
        (SystemKind::Briq, "table5"),
    ] {
        if experiment != "all" && experiment != table {
            continue;
        }
        let r = evaluate_system(&s.briq, sys, &docs);
        println!(
            "== Table {}: results by mention type, using {} ==",
            &table[5..],
            sys.name()
        );
        println!("{}", per_type_table(&r));
    }
}

fn table6(s: &Setup) {
    println!("== Table VI: selectivity and recall after filtering ==");
    let docs = test_documents(s, Perturbation::Original);
    let (stats, recall) = filtering_stats(&s.briq, &docs);
    let mut t = TextTable::new(&["type", "selectivity", "recall"]);
    for k in TYPE_ORDER {
        let sel = stats
            .selectivity(k)
            .map(|v| {
                if v < 0.005 {
                    "< 0.01".to_string()
                } else {
                    fmt(v)
                }
            })
            .unwrap_or_else(|| "-".into());
        let rec = recall.recall(k).map(fmt).unwrap_or_else(|| "-".into());
        t.row(vec![k.to_string(), sel, rec]);
    }
    t.row(vec![
        "overall".into(),
        fmt(stats.overall_selectivity()),
        fmt(recall.overall()),
    ]);
    println!("{}", t.render());
}

fn table7(docs: usize, seed: u64) {
    println!("== Table VII: ablation study (recall / precision / F1) ==");
    let masks = [
        ("all features", FeatureMask::all()),
        (
            "w/o surf. sim.",
            FeatureMask {
                surface: false,
                context: true,
                quantity: true,
            },
        ),
        (
            "w/o context",
            FeatureMask {
                surface: true,
                context: false,
                quantity: true,
            },
        ),
        (
            "w/o quantity",
            FeatureMask {
                surface: true,
                context: true,
                quantity: false,
            },
        ),
    ];
    let mut t = TextTable::new(&[
        "", "RF-R", "RWR-R", "BriQ-R", "RF-P", "RWR-P", "BriQ-P", "RF-F1", "RWR-F1", "BriQ-F1",
    ]);
    for (label, mask) in masks {
        let s = prepare(&SetupConfig {
            n_documents: docs,
            seed,
            mask,
        });
        let test = test_documents(&s, Perturbation::Original);
        let mut row = vec![label.to_string()];
        let reports: Vec<_> = SystemKind::ALL
            .iter()
            .map(|&sys| evaluate_system(&s.briq, sys, &test).overall())
            .collect();
        for r in &reports {
            row.push(fmt(r.recall));
        }
        for r in &reports {
            row.push(fmt(r.precision));
        }
        for r in &reports {
            row.push(fmt(r.f1));
        }
        t.row(row);
    }
    println!("{}", t.render());
}

fn table8(docs: usize, seed: u64) {
    println!("== Table VIII: throughput by domain (docs/min) ==");
    let s = prepare(&SetupConfig {
        n_documents: docs,
        seed,
        mask: FeatureMask::all(),
    });
    let workers = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4);
    let mut t = TextTable::new(&[
        "domain",
        "pages",
        "documents",
        "mentions",
        "docs/min",
        "RWR docs/min",
    ]);
    let mut total = (0usize, 0usize, 0usize, 0.0f64, 0.0f64);
    for domain in Domain::ALL {
        let domain_docs: Vec<_> = s
            .documents
            .iter()
            .zip(&s.domains)
            .filter(|&(_, d)| *d == domain)
            .map(|(ld, _)| ld.clone())
            .collect();
        if domain_docs.is_empty() {
            continue;
        }
        let pages = build_pages(&domain_docs, 3);
        let r = measure(&s.briq, ThroughputSystem::Briq, &pages, workers);
        let rwr = measure(&s.briq, ThroughputSystem::RwrOnly, &pages, workers);
        t.row(vec![
            domain.name().to_string(),
            r.pages.to_string(),
            r.documents.to_string(),
            r.mentions.to_string(),
            format!("{:.0}", r.docs_per_minute()),
            format!("{:.0}", rwr.docs_per_minute()),
        ]);
        total.0 += r.pages;
        total.1 += r.documents;
        total.2 += r.mentions;
        total.3 += r.seconds;
        total.4 += rwr.seconds;
    }
    t.row(vec![
        "total".into(),
        total.0.to_string(),
        total.1.to_string(),
        total.2.to_string(),
        format!("{:.0}", total.1 as f64 * 60.0 / total.3.max(1e-9)),
        format!("{:.0}", total.1 as f64 * 60.0 / total.4.max(1e-9)),
    ]);
    println!("{}", t.render());
}

fn table9(docs: usize, seed: u64) {
    println!("== Table IX: table statistics by domain ==");
    let corpus = generate_corpus(&CorpusConfig {
        n_documents: docs,
        seed,
        ..Default::default()
    });
    let vc = VirtualCellConfig::default();
    let mut t = TextTable::new(&["domain", "rows", "columns", "single cells", "virtual cells"]);
    let mut all_tables = Vec::new();
    for domain in Domain::ALL {
        let tables: Vec<_> = corpus
            .documents
            .iter()
            .zip(&corpus.domains)
            .filter(|&(_, d)| *d == domain)
            .flat_map(|(ld, _)| ld.document.tables.iter())
            .collect();
        if tables.is_empty() {
            continue;
        }
        let avg = average_stats(tables.iter().copied(), &vc);
        all_tables.extend(tables);
        t.row(vec![
            domain.name().to_string(),
            format!("{:.0}", avg.rows),
            format!("{:.0}", avg.columns),
            format!("{:.0}", avg.single_cells),
            format!("{:.0}", avg.virtual_cells),
        ]);
    }
    let avg = average_stats(all_tables, &vc);
    t.row(vec![
        "average".into(),
        format!("{:.0}", avg.rows),
        format!("{:.0}", avg.columns),
        format!("{:.0}", avg.single_cells),
        format!("{:.0}", avg.virtual_cells),
    ]);
    println!("{}", t.render());
}

/// Extra ablations beyond the paper (DESIGN.md §3): entropy ordering,
/// graph updates, adaptive top-k, α/β mixing.
fn ablation_extra(docs: usize, seed: u64) {
    println!("== Extra ablations (BriQ F1, original mentions) ==");
    let s = prepare(&SetupConfig {
        n_documents: docs,
        seed,
        mask: FeatureMask::all(),
    });
    let test = test_documents(&s, Perturbation::Original);

    let f1_with = |briq: &Briq| {
        let mut report = briq_core::evaluate::EvalReport::default();
        for ld in &test {
            report.add_document(&briq.align(&ld.document), &ld.gold);
        }
        report.overall().f1
    };

    let mut t = TextTable::new(&["variant", "F1"]);
    t.row(vec!["full BriQ".into(), fmt(f1_with(&s.briq))]);

    // α/β sweep of Eq. 1.
    for (alpha, beta) in [(1.0, 0.0), (0.0, 1.0), (0.5, 0.5)] {
        let mut briq = s.briq.clone();
        briq.cfg.resolution = ResolutionConfig {
            alpha,
            beta,
            ..briq.cfg.resolution
        };
        t.row(vec![
            format!("alpha={alpha} beta={beta}"),
            fmt(f1_with(&briq)),
        ]);
    }

    // Fixed small top-k instead of adaptive.
    {
        let mut briq = s.briq.clone();
        briq.cfg.filter.k_exact = 2;
        briq.cfg.filter.k_approx = 2;
        briq.cfg.filter.k_small = 2;
        briq.cfg.filter.k_large = 2;
        t.row(vec!["fixed top-2 filter".into(), fmt(f1_with(&briq))]);
    }

    // No virtual cells at all.
    {
        let mut cfg = BriqConfig::default();
        cfg.virtual_cells.sums = false;
        cfg.virtual_cells.differences = false;
        cfg.virtual_cells.percentages = false;
        cfg.virtual_cells.change_ratios = false;
        let mut briq = s.briq.clone();
        briq.cfg.virtual_cells = cfg.virtual_cells;
        t.row(vec!["no virtual cells".into(), fmt(f1_with(&briq))]);
    }
    println!("{}", t.render());
}
