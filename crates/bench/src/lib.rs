//! # briq-bench
//!
//! Experiment harness reproducing every table of the paper's evaluation
//! (§VIII) on the synthetic corpus, plus the throughput machinery for
//! Table VIII. The `briq-eval` binary drives it; Criterion benches in
//! `benches/` time the individual pipeline stages.

pub mod experiments;
pub mod report;
pub mod throughput;

pub use experiments::{ExperimentSetup, SystemKind};
