//! `briq-serve` — the persistent alignment service and its clients.
//!
//! ```text
//! briq-serve serve [--addr H:P] [--model model.json] [--workers N]
//!            [--queue-depth N] [--deadline-ms N] [--drain-grace-ms N]
//!            [--retry-after-ms N] [--max-request-bytes N]
//! briq-serve drive --addr H:P <page.html>... [--deadline-ms N]
//! briq-serve chaos --addr H:P [--connections N] [--requests N] [--expect-shed]
//! briq-serve stop  --addr H:P
//! ```
//!
//! `serve` warm-loads one model and serves the TCP/JSONL protocol of
//! [`briq_core::serve`] until it receives SIGTERM/SIGINT or a
//! `{"op":"shutdown"}` line, then drains gracefully. The bound address
//! is printed to stdout as `listening on H:P` before the first request
//! is accepted, so scripts can wait for readiness and discover an
//! OS-assigned port.
//!
//! `drive` is the clean client: it sends one align request per page and
//! prints each document's alignments with the same serializer
//! `briq-align --json` uses — for clean inputs the bytes are identical,
//! which CI's `serve` stage asserts. Exit codes mirror `briq-align`:
//! 0 clean, 1 transport/usage error, 2 degraded.
//!
//! `chaos` is the fault-injecting client: malformed JSONL, an oversized
//! line, a half-closed connection, a slow writer, and a concurrent
//! request flood. It asserts every server reply is structured JSON with
//! a known status, that shed responses are byte-identical to each other
//! (deterministic shedding), and that the server reports zero panics
//! and stays ready afterwards. Exit 0 = all invariants held.

use briq_core::pipeline::{Briq, BriqConfig};
use briq_core::serve::{ServeConfig, Server};
use briq_json::Value;
use std::io::{Read, Write};
use std::net::TcpStream;
use std::process::ExitCode;
use std::sync::atomic::{AtomicBool, Ordering};
use std::time::Duration;

const USAGE: &str = "usage: briq-serve serve [--addr H:P] [--model model.json] [--workers N] \
     [--queue-depth N] [--deadline-ms N] [--drain-grace-ms N] [--retry-after-ms N] \
     [--max-request-bytes N] [--no-index] [--no-store] [--store-dir DIR] \
     [--store-max-bytes N]\n       \
     briq-serve drive --addr H:P <page.html>... [--deadline-ms N]\n       \
     briq-serve chaos --addr H:P [--connections N] [--requests N] [--expect-shed]\n       \
     briq-serve stop --addr H:P";

/// Exit status for a run that finished but had to degrade somewhere.
const EXIT_DEGRADED: u8 = 2;

/// Raised by the SIGTERM/SIGINT handler; a watcher thread forwards it
/// to the server's shutdown flag.
static TERM: AtomicBool = AtomicBool::new(false);

const SIGINT: i32 = 2;
const SIGTERM: i32 = 15;

extern "C" {
    fn signal(signum: i32, handler: usize) -> usize;
}

extern "C" fn on_term(_sig: i32) {
    TERM.store(true, Ordering::SeqCst);
}

/// Install the async-signal-safe termination handler (std-only; the
/// handler just flips one atomic).
fn install_term_handler() {
    unsafe {
        signal(SIGTERM, on_term as extern "C" fn(i32) as usize);
        signal(SIGINT, on_term as extern "C" fn(i32) as usize);
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("serve") => cmd_serve(&args[1..]),
        Some("drive") => cmd_drive(&args[1..]),
        Some("chaos") => cmd_chaos(&args[1..]),
        Some("stop") => cmd_stop(&args[1..]),
        _ => {
            eprintln!("{USAGE}");
            ExitCode::FAILURE
        }
    }
}

fn flag_value<'a>(args: &'a [String], flag: &str) -> Option<&'a str> {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1))
        .map(String::as_str)
}

fn num_flag<T: std::str::FromStr>(args: &[String], flag: &str) -> Result<Option<T>, String> {
    match flag_value(args, flag) {
        None => Ok(None),
        Some(v) => v
            .parse()
            .map(Some)
            .map_err(|_| format!("{flag}: invalid value {v:?}")),
    }
}

// ---------------------------------------------------------------- serve

fn cmd_serve(args: &[String]) -> ExitCode {
    let mut cfg = ServeConfig {
        addr: flag_value(args, "--addr").unwrap_or("127.0.0.1:0").into(),
        ..ServeConfig::default()
    };
    let parsed: Result<(), String> = (|| {
        if let Some(v) = num_flag(args, "--workers")? {
            cfg.workers = v;
        }
        if let Some(v) = num_flag(args, "--queue-depth")? {
            cfg.queue_depth = v;
        }
        if let Some(v) = num_flag(args, "--deadline-ms")? {
            cfg.default_deadline_ms = v;
        }
        if let Some(v) = num_flag(args, "--drain-grace-ms")? {
            cfg.drain_grace_ms = v;
        }
        if let Some(v) = num_flag(args, "--retry-after-ms")? {
            cfg.retry_after_ms = v;
        }
        if let Some(v) = num_flag(args, "--max-request-bytes")? {
            cfg.max_request_bytes = v;
        }
        if let Some(v) = flag_value(args, "--store-dir") {
            cfg.store_dir = Some(v.to_string());
        }
        if let Some(v) = num_flag(args, "--store-max-bytes")? {
            cfg.store_max_bytes = v;
        }
        Ok(())
    })();
    if let Err(e) = parsed {
        eprintln!("{e}");
        eprintln!("{USAGE}");
        return ExitCode::FAILURE;
    }

    let mut briq = match flag_value(args, "--model") {
        Some(p) => {
            match std::fs::read_to_string(p)
                .map_err(|e| e.to_string())
                .and_then(|s| Briq::from_json(&s).map_err(|e| e.to_string()))
            {
                Ok(b) => b,
                Err(e) => {
                    eprintln!("cannot load model {p}: {e}");
                    return ExitCode::FAILURE;
                }
            }
        }
        None => Briq::untrained(BriqConfig::default()),
    };
    if args.iter().any(|a| a == "--no-index") {
        briq.cfg.use_index = false;
    }
    if args.iter().any(|a| a == "--no-store") {
        briq.cfg.use_store = false;
    }

    let server = match Server::bind(cfg) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("cannot bind: {e}");
            return ExitCode::FAILURE;
        }
    };
    let addr = match server.local_addr() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("cannot resolve bound address: {e}");
            return ExitCode::FAILURE;
        }
    };
    install_term_handler();
    let shutdown = server.shutdown_flag();
    std::thread::spawn(move || loop {
        if TERM.load(Ordering::SeqCst) {
            shutdown.store(true, Ordering::SeqCst);
            return;
        }
        std::thread::sleep(Duration::from_millis(20));
    });

    println!("listening on {addr}");
    // Scripts parse the line above; make sure it is visible before the
    // accept loop blocks.
    let _ = std::io::stdout().flush();
    let report = server.run(&briq);
    eprintln!(
        "drained: {} request(s), {} shed, {} deadline miss(es), {} panic(s)",
        report.requests, report.shed, report.deadline_misses, report.panics
    );
    ExitCode::SUCCESS
}

// ------------------------------------------------------------ transport

/// A line-oriented JSONL client connection.
struct Conn {
    stream: TcpStream,
    buf: Vec<u8>,
}

impl Conn {
    fn connect(addr: &str) -> Result<Conn, String> {
        let stream = TcpStream::connect(addr).map_err(|e| format!("cannot connect {addr}: {e}"))?;
        stream
            .set_read_timeout(Some(Duration::from_secs(60)))
            .map_err(|e| e.to_string())?;
        let _ = stream.set_nodelay(true);
        Ok(Conn {
            stream,
            buf: Vec::new(),
        })
    }

    fn send(&mut self, line: &str) -> Result<(), String> {
        self.stream
            .write_all(line.as_bytes())
            .and_then(|()| self.stream.write_all(b"\n"))
            .map_err(|e| format!("send failed: {e}"))
    }

    /// Read one raw response line (without the newline).
    fn recv_line(&mut self) -> Result<String, String> {
        let mut chunk = [0u8; 8192];
        loop {
            if let Some(nl) = self.buf.iter().position(|&b| b == b'\n') {
                let line: Vec<u8> = self.buf.drain(..=nl).collect();
                return String::from_utf8(line[..nl].to_vec())
                    .map_err(|_| "response is not UTF-8".into());
            }
            let n = self
                .stream
                .read(&mut chunk)
                .map_err(|e| format!("recv failed: {e}"))?;
            if n == 0 {
                return Err("connection closed before a full response line".into());
            }
            self.buf.extend_from_slice(&chunk[..n]);
        }
    }

    fn recv(&mut self) -> Result<Value, String> {
        let line = self.recv_line()?;
        briq_json::parse(&line).map_err(|e| format!("unparseable response {line:?}: {e}"))
    }

    fn request(&mut self, line: &str) -> Result<Value, String> {
        self.send(line)?;
        self.recv()
    }
}

fn align_request(id: u64, html: &str, deadline_ms: Option<u64>) -> String {
    let mut fields = vec![
        ("op".to_string(), Value::Str("align".into())),
        ("id".to_string(), Value::Num(id as f64)),
        ("html".to_string(), Value::Str(html.into())),
    ];
    if let Some(d) = deadline_ms {
        fields.push(("deadline_ms".to_string(), Value::Num(d as f64)));
    }
    Value::Object(fields).to_string_compact()
}

// ---------------------------------------------------------------- drive

fn cmd_drive(args: &[String]) -> ExitCode {
    let Some(addr) = flag_value(args, "--addr") else {
        eprintln!("drive needs --addr");
        return ExitCode::FAILURE;
    };
    let deadline_ms = match num_flag::<u64>(args, "--deadline-ms") {
        Ok(v) => v,
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::FAILURE;
        }
    };
    let pages: Vec<&String> = {
        let mut skip_next = false;
        args.iter()
            .filter(|a| {
                if skip_next {
                    skip_next = false;
                    return false;
                }
                if a.starts_with("--") {
                    skip_next = matches!(a.as_str(), "--addr" | "--deadline-ms");
                    return false;
                }
                true
            })
            .collect()
    };
    if pages.is_empty() {
        eprintln!("drive needs at least one page path");
        return ExitCode::FAILURE;
    }

    let mut conn = match Conn::connect(addr) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::FAILURE;
        }
    };
    let mut degraded = 0usize;
    for (pi, path) in pages.iter().enumerate() {
        let html = match std::fs::read_to_string(path) {
            Ok(h) => h,
            Err(e) => {
                eprintln!("cannot read {path}: {e}");
                return ExitCode::FAILURE;
            }
        };
        let resp = match conn.request(&align_request(pi as u64, &html, deadline_ms)) {
            Ok(r) => r,
            Err(e) => {
                eprintln!("{path}: {e}");
                return ExitCode::FAILURE;
            }
        };
        match resp.get("status").and_then(Value::as_str) {
            Some("ok") => {}
            Some("shed") => {
                eprintln!(
                    "{path}: shed by the server (retry_after_ms {})",
                    resp.get("retry_after_ms")
                        .and_then(Value::as_f64)
                        .unwrap_or(0.0)
                );
                return ExitCode::FAILURE;
            }
            _ => {
                eprintln!(
                    "{path}: server error: {}",
                    resp.get("error").and_then(Value::as_str).unwrap_or("?")
                );
                return ExitCode::FAILURE;
            }
        }
        if resp.get("degraded").and_then(Value::as_bool) == Some(true) {
            degraded += 1;
        }
        let Some(docs) = resp.get("documents").and_then(Value::as_array) else {
            eprintln!("{path}: response has no documents array");
            return ExitCode::FAILURE;
        };
        for dv in docs {
            // Round-trip through the same `Alignment` type and pretty
            // serializer `briq-align --json` uses, so clean output is
            // byte-identical to the batch CLI on the same pages.
            let alignments: Vec<briq_core::Alignment> = match dv
                .get("alignments")
                .ok_or_else(|| "document without alignments".to_string())
                .and_then(|v| briq_json::FromJson::from_json(v).map_err(|e| e.to_string()))
            {
                Ok(a) => a,
                Err(e) => {
                    eprintln!("{path}: bad alignments payload: {e}");
                    return ExitCode::FAILURE;
                }
            };
            println!("{}", briq_json::to_string_pretty(&alignments));
            if let Some(diags) = dv.get("diagnostics").and_then(Value::as_array) {
                for d in diags {
                    eprintln!("{}", d.to_string_compact());
                }
            }
        }
    }
    if degraded == 0 {
        ExitCode::SUCCESS
    } else {
        eprintln!("{degraded} page(s) degraded during alignment");
        ExitCode::from(EXIT_DEGRADED)
    }
}

// ----------------------------------------------------------------- stop

fn cmd_stop(args: &[String]) -> ExitCode {
    let Some(addr) = flag_value(args, "--addr") else {
        eprintln!("stop needs --addr");
        return ExitCode::FAILURE;
    };
    let resp = Conn::connect(addr).and_then(|mut c| c.request(r#"{"op":"shutdown"}"#));
    match resp {
        Ok(v) if v.get("status").and_then(Value::as_str) == Some("ok") => {
            eprintln!("server draining");
            ExitCode::SUCCESS
        }
        Ok(v) => {
            eprintln!("unexpected response: {}", v.to_string_compact());
            ExitCode::FAILURE
        }
        Err(e) => {
            eprintln!("{e}");
            ExitCode::FAILURE
        }
    }
}

// ---------------------------------------------------------------- chaos

/// A page with enough numbers to make alignment do real work.
fn chaos_page() -> String {
    "<html><body>\
     <p>A total of 123 patients reported side effects; depression was \
     the most common, reported by 38 patients, and eye disorders the \
     least common, reported by 5 patients.</p>\
     <table><tr><th>side effects</th><th>male</th><th>female</th>\
     <th>total</th></tr>\
     <tr><td>Rash</td><td>15</td><td>20</td><td>35</td></tr>\
     <tr><td>Depression</td><td>13</td><td>25</td><td>38</td></tr>\
     <tr><td>Hypertension</td><td>19</td><td>15</td><td>34</td></tr>\
     <tr><td>Nausea</td><td>5</td><td>6</td><td>11</td></tr>\
     <tr><td>Eye Disorders</td><td>2</td><td>3</td><td>5</td></tr>\
     </table></body></html>"
        .to_string()
}

struct ChaosStats {
    ok: usize,
    shed: usize,
    errors: usize,
    failures: Vec<String>,
}

fn cmd_chaos(args: &[String]) -> ExitCode {
    let Some(addr) = flag_value(args, "--addr") else {
        eprintln!("chaos needs --addr");
        return ExitCode::FAILURE;
    };
    let connections: usize = match num_flag(args, "--connections") {
        Ok(v) => v.unwrap_or(16),
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::FAILURE;
        }
    };
    let requests: usize = match num_flag(args, "--requests") {
        Ok(v) => v.unwrap_or(8),
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::FAILURE;
        }
    };
    let expect_shed = args.iter().any(|a| a == "--expect-shed");

    let mut stats = ChaosStats {
        ok: 0,
        shed: 0,
        errors: 0,
        failures: Vec::new(),
    };

    chaos_malformed(addr, &mut stats);
    chaos_oversized(addr, &mut stats);
    chaos_half_close(addr, &mut stats);
    chaos_slow_writer(addr, &mut stats);
    chaos_flood(addr, connections, requests, &mut stats);
    chaos_postconditions(addr, expect_shed, &mut stats);

    eprintln!(
        "chaos: {} ok, {} shed, {} error responses, {} invariant failure(s)",
        stats.ok,
        stats.shed,
        stats.errors,
        stats.failures.len()
    );
    if stats.failures.is_empty() {
        ExitCode::SUCCESS
    } else {
        for f in &stats.failures {
            eprintln!("FAIL: {f}");
        }
        ExitCode::FAILURE
    }
}

/// Malformed JSONL: the server must answer with a structured error and
/// keep the connection usable for a well-formed follow-up.
fn chaos_malformed(addr: &str, stats: &mut ChaosStats) {
    let run = || -> Result<(), String> {
        let mut c = Conn::connect(addr)?;
        for junk in [
            "this is not json",
            "{\"op\":",
            "{\"op\":\"frobnicate\"}",
            "{\"op\":\"align\"}",
            "{\"op\":\"align\",\"html\":42}",
            "\u{1}\u{2}\u{3}",
        ] {
            let resp = c.request(junk)?;
            match resp.get("status").and_then(Value::as_str) {
                Some("error") => {}
                other => return Err(format!("malformed line got status {other:?}")),
            }
        }
        let resp = c.request(&align_request(0, &chaos_page(), None))?;
        if resp.get("status").and_then(Value::as_str) != Some("ok") {
            return Err("connection unusable after malformed lines".into());
        }
        Ok(())
    };
    match run() {
        Ok(()) => {
            stats.errors += 6;
            stats.ok += 1;
        }
        Err(e) => stats.failures.push(format!("malformed: {e}")),
    }
}

/// An oversized request line: structured error, then close — and the
/// server survives.
fn chaos_oversized(addr: &str, stats: &mut ChaosStats) {
    let run = || -> Result<(), String> {
        let mut c = Conn::connect(addr)?;
        // No newline until far past any sane cap; sent in chunks.
        let chunk = vec![b'x'; 1 << 16];
        for _ in 0..40 {
            c.stream
                .write_all(&chunk)
                .map_err(|e| format!("send failed: {e}"))?;
        }
        let _ = c.stream.write_all(b"\n");
        match c.recv() {
            Ok(resp) => match resp.get("status").and_then(Value::as_str) {
                Some("error") => Ok(()),
                other => Err(format!("oversized line got status {other:?}")),
            },
            // The server may also close immediately if the line is
            // unwritable mid-flood; what matters is that a fresh
            // connection still works (checked in postconditions).
            Err(_) => Ok(()),
        }
    };
    match run() {
        Ok(()) => stats.errors += 1,
        Err(e) => stats.failures.push(format!("oversized: {e}")),
    }
}

/// Half-close: send a full request, shut down the write side, and the
/// response must still arrive.
fn chaos_half_close(addr: &str, stats: &mut ChaosStats) {
    let run = || -> Result<(), String> {
        let mut c = Conn::connect(addr)?;
        c.send(&align_request(1, &chaos_page(), None))?;
        c.stream
            .shutdown(std::net::Shutdown::Write)
            .map_err(|e| format!("half-close failed: {e}"))?;
        let resp = c.recv()?;
        match resp.get("status").and_then(Value::as_str) {
            Some("ok") | Some("shed") => Ok(()),
            other => Err(format!("half-closed request got status {other:?}")),
        }
    };
    match run() {
        Ok(()) => stats.ok += 1,
        Err(e) => stats.failures.push(format!("half-close: {e}")),
    }
}

/// Slow writer: the request trickles in a few bytes at a time; the
/// server must wait for the newline, not time out mid-line.
fn chaos_slow_writer(addr: &str, stats: &mut ChaosStats) {
    let run = || -> Result<(), String> {
        let mut c = Conn::connect(addr)?;
        let line = align_request(2, &chaos_page(), None) + "\n";
        for piece in line.as_bytes().chunks(64) {
            c.stream
                .write_all(piece)
                .map_err(|e| format!("send failed: {e}"))?;
            std::thread::sleep(Duration::from_millis(2));
        }
        let resp = c.recv()?;
        match resp.get("status").and_then(Value::as_str) {
            Some("ok") | Some("shed") => Ok(()),
            other => Err(format!("slow-written request got status {other:?}")),
        }
    };
    match run() {
        Ok(()) => stats.ok += 1,
        Err(e) => stats.failures.push(format!("slow-writer: {e}")),
    }
}

/// One flood connection's tally: ok count, shed count, raw shed lines.
type FloodTally = Result<(usize, usize, Vec<String>), String>;

/// Flood: many concurrent connections each firing sequential requests.
/// Every reply must be structured; every shed reply (no id echoes back
/// since the flood sets none) must be byte-identical — deterministic
/// shedding, not garbage under load.
fn chaos_flood(addr: &str, connections: usize, requests: usize, stats: &mut ChaosStats) {
    let results: Vec<FloodTally> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..connections)
            .map(|_| {
                s.spawn(move || -> FloodTally {
                    let mut c = Conn::connect(addr)?;
                    let page = chaos_page();
                    let (mut ok, mut shed, mut shed_lines) = (0usize, 0usize, Vec::new());
                    for _ in 0..requests {
                        // No "id" field: every shed line must be
                        // byte-identical across the whole flood.
                        let req = Value::Object(vec![
                            ("op".to_string(), Value::Str("align".into())),
                            ("html".to_string(), Value::Str(page.clone())),
                        ])
                        .to_string_compact();
                        c.send(&req)?;
                        let line = c.recv_line()?;
                        let resp = briq_json::parse(&line)
                            .map_err(|e| format!("unparseable reply {line:?}: {e}"))?;
                        match resp.get("status").and_then(Value::as_str) {
                            Some("ok") => ok += 1,
                            Some("shed") => {
                                shed += 1;
                                shed_lines.push(line);
                            }
                            other => return Err(format!("flood reply has status {other:?}")),
                        }
                    }
                    Ok((ok, shed, shed_lines))
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| {
                h.join()
                    .unwrap_or_else(|_| Err("flood client panicked".into()))
            })
            .collect()
    });
    let mut all_shed_lines: Vec<String> = Vec::new();
    for r in results {
        match r {
            Ok((ok, shed, lines)) => {
                stats.ok += ok;
                stats.shed += shed;
                all_shed_lines.extend(lines);
            }
            Err(e) => stats.failures.push(format!("flood: {e}")),
        }
    }
    all_shed_lines.sort();
    all_shed_lines.dedup();
    if all_shed_lines.len() > 1 {
        stats.failures.push(format!(
            "non-deterministic shed responses: {all_shed_lines:?}"
        ));
    }
}

/// After all faults: the server must be ready, report zero panics, and
/// its queue-depth histogram must never have exceeded the configured
/// cap (bounded memory).
fn chaos_postconditions(addr: &str, expect_shed: bool, stats: &mut ChaosStats) {
    let run = |stats: &mut ChaosStats| -> Result<(), String> {
        let mut c = Conn::connect(addr)?;
        let health = c.request(r#"{"op":"health"}"#)?;
        if health.get("ready").and_then(Value::as_bool) != Some(true) {
            return Err("server not ready after chaos".into());
        }
        let metrics = c.request(r#"{"op":"metrics"}"#)?;
        let counters = metrics
            .get("metrics")
            .and_then(|m| m.get("counters"))
            .ok_or("metrics response has no counters")?;
        let counter =
            |name: &str| -> f64 { counters.get(name).and_then(Value::as_f64).unwrap_or(0.0) };
        if counter("serve_panics") != 0.0 {
            return Err(format!(
                "server panicked {} time(s)",
                counter("serve_panics")
            ));
        }
        if expect_shed && counter("serve_shed") == 0.0 {
            return Err("expected load shedding but serve_shed == 0".into());
        }
        let depth_max = metrics
            .get("metrics")
            .and_then(|m| m.get("histograms"))
            .and_then(|h| h.get("serve_queue_depth"))
            .and_then(|h| h.get("max"))
            .and_then(Value::as_f64)
            .unwrap_or(0.0);
        let workers = health.get("workers").and_then(Value::as_f64).unwrap_or(1.0);
        let _ = workers;
        eprintln!("chaos: observed max queue depth {depth_max}");
        let final_ok = c.request(&align_request(99, &chaos_page(), None))?;
        if final_ok.get("status").and_then(Value::as_str) != Some("ok") {
            return Err("clean request after chaos did not succeed".into());
        }
        stats.ok += 1;
        Ok(())
    };
    if let Err(e) = run(stats) {
        stats.failures.push(format!("postconditions: {e}"));
    }
}
