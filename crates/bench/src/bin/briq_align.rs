//! `briq-align` — align quantities in HTML pages from the command line.
//!
//! ```text
//! briq-align <page.html>... [--batch dir] [--jobs N] [--model model.json]
//!            [--json] [--no-index] [--no-csr] [--no-store]
//!            [--repeat N] [--warm-from dir] [--diagnostics diag.jsonl]
//!            [--trace trace.json] [--metrics metrics.jsonl]
//! briq-align --train-demo model.json       # train on a synthetic corpus
//! briq-align --gen-corpus dir [--docs N] [--seed S] [--per-page K]
//! ```
//!
//! Pages come from positional arguments and/or `--batch <dir>` (every
//! `*.html` in the directory, sorted by name). All segmented documents
//! from all pages form one batch that runs through the parallel
//! batch-alignment engine ([`briq_core::batch`]) with `--jobs N` workers
//! (default 1, `0` = one per core). Output order and content are
//! bit-identical for every `--jobs` value — CI's determinism stage relies
//! on that. Without `--model`, the heuristic (untrained) prior is used;
//! `--gen-corpus` writes a seeded page corpus for batch runs.
//!
//! Alignment runs through the budgeted, panic-free `align_checked` path.
//! Every degraded item (skipped table, truncated candidate set,
//! non-converged walk) becomes one JSON object with its scope prefixed by
//! the document's batch index; `--diagnostics` writes them as JSON Lines,
//! otherwise they go to stderr. Timings never appear in the JSONL, so it
//! is byte-stable across worker counts.
//!
//! The batch runs against a versioned [`briq_core::store::AlignmentStore`]
//! keyed by page basename + segment index, so repeated runs in one
//! process are incremental. `--repeat N` re-aligns the whole batch N
//! times against the warm store and reports per-repetition stage timings
//! plus store counters on stderr (cold vs warm in one invocation);
//! `--warm-from <dir>` pre-warms the store from another page directory
//! (output discarded) before the real batch — CI's store stage warms
//! from a pristine corpus and aligns a mutated copy to exercise
//! incremental re-alignment. `--no-store` (or `BRIQ_NO_STORE=1`) is the
//! full-recompute oracle; stdout is bit-identical either way
//! (DESIGN.md §15).
//!
//! `--trace <file>` writes a Chrome `trace_event` JSON file (open it in
//! `chrome://tracing` or <https://ui.perfetto.dev>) with one track per
//! document; `--metrics <file>` writes the merged metrics registry as
//! JSON Lines and prints a summary table to stderr. Both only *observe*:
//! alignment stdout and the diagnostics JSONL are byte-identical with and
//! without them (CI's determinism stage enforces this). See
//! OPERATIONS.md for a walkthrough and DESIGN.md §11 for every metric
//! name. Exit codes:
//!
//! * `0` — all documents aligned cleanly;
//! * `1` — usage error, nothing alignable, or at least one input page
//!   was unreadable (unreadable pages degrade to a `Stage::Batch`
//!   diagnostic and are skipped; the readable pages still align and
//!   print normally — a partially-broken batch directory no longer
//!   aborts the run). Pages with invalid UTF-8 are decoded lossily
//!   rather than rejected;
//! * `2` — alignment completed, but at least one item degraded.

use briq_core::batch::BatchConfig;
use briq_core::pipeline::{Briq, BriqConfig};
use briq_core::store::{AlignmentStore, Fingerprint};
use briq_core::{DegradedAction, Diagnostic, Diagnostics, Stage};
use briq_table::html::parse_page;
use briq_table::segment::{segment_page, SegmentConfig};
use briq_table::Document;
use std::process::ExitCode;

/// Exit status for a run that finished but had to degrade somewhere.
const EXIT_DEGRADED: u8 = 2;

const USAGE: &str = "usage: briq-align <page.html>... [--batch dir] [--jobs N] \
     [--model model.json] [--json] [--no-index] [--no-csr] [--no-store] \
     [--store-dir DIR] [--store-max-bytes N] \
     [--repeat N] [--warm-from dir] [--diagnostics diag.jsonl] \
     [--trace trace.json] [--metrics metrics.jsonl]\n       \
     briq-align --train-demo <model.json>\n       \
     briq-align --gen-corpus <dir> [--docs N] [--seed S] [--per-page K]";

/// Everything parsed from the command line.
struct Cli {
    pages: Vec<String>,
    jobs: usize,
    as_json: bool,
    model: Option<String>,
    no_index: bool,
    no_csr: bool,
    no_store: bool,
    store_dir: Option<String>,
    store_max_bytes: u64,
    repeat: usize,
    warm_from: Option<String>,
    diagnostics: Option<String>,
    trace: Option<String>,
    metrics: Option<String>,
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() {
        eprintln!("{USAGE}");
        return ExitCode::FAILURE;
    }

    if args[0] == "--train-demo" {
        let Some(path) = args.get(1) else {
            eprintln!("--train-demo needs an output path");
            return ExitCode::FAILURE;
        };
        return train_demo(path);
    }
    if args[0] == "--gen-corpus" {
        return gen_corpus(&args);
    }

    let cli = match parse_cli(&args) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("{e}");
            eprintln!("{USAGE}");
            return ExitCode::FAILURE;
        }
    };

    let mut briq = match &cli.model {
        Some(p) => {
            match std::fs::read_to_string(p)
                .map_err(|e| e.to_string())
                .and_then(|s| Briq::from_json(&s).map_err(|e| e.to_string()))
            {
                Ok(b) => b,
                Err(e) => {
                    eprintln!("cannot load model {p}: {e}");
                    return ExitCode::FAILURE;
                }
            }
        }
        None => Briq::untrained(BriqConfig::default()),
    };
    if cli.no_index {
        briq.cfg.use_index = false;
    }
    if cli.no_csr {
        briq.cfg.resolution.use_csr = false;
    }
    if cli.no_store {
        briq.cfg.use_store = false;
    }

    let (docs, keys, io_diags) = load_documents(&cli.pages);
    if docs.is_empty() {
        eprintln!("no paragraph/table documents found in any readable input page");
        return ExitCode::FAILURE;
    }

    // Per-document tracing is needed for either export; it never changes
    // alignment output (CI byte-compares a traced run to enforce that).
    let cfg = BatchConfig {
        trace: cli.trace.is_some() || cli.metrics.is_some(),
        ..BatchConfig::with_jobs(cli.jobs)
    };

    // One store serves the whole process: the optional warm-from corpus,
    // then every repetition of the real batch. Disabled stores fall
    // through to the plain path inside `align_batch_stored`; --store-dir
    // is ignored when the store is off, so a cold `--no-store` /
    // `BRIQ_NO_STORE=1` oracle run can never touch warm on-disk state.
    let store_opts = briq_core::store::StoreOptions {
        dir: briq
            .store_effective()
            .then(|| cli.store_dir.clone().map(Into::into))
            .flatten(),
        max_bytes: cli.store_max_bytes,
        ..briq_core::store::StoreOptions::default()
    };
    let store = match AlignmentStore::with_options(&briq, &store_opts) {
        Ok(s) => s,
        Err(e) => {
            eprintln!(
                "cannot open store dir {}: {e}",
                cli.store_dir.as_deref().unwrap_or("?")
            );
            return ExitCode::FAILURE;
        }
    };
    if store.persisted() {
        eprintln!(
            "store: recovered {} entr{} in {:.3}s{}{}",
            store.recovered_entries(),
            if store.recovered_entries() == 1 {
                "y"
            } else {
                "ies"
            },
            store.recover_seconds(),
            if store.recover_truncated() {
                " (torn tail truncated)"
            } else {
                ""
            },
            if store.recover_rebuilt() {
                " (incompatible state rebuilt)"
            } else {
                ""
            },
        );
    }
    if let Some(dir) = &cli.warm_from {
        let warm_paths = match html_files_in(dir) {
            Ok(p) => p,
            Err(e) => {
                eprintln!("{e}");
                return ExitCode::FAILURE;
            }
        };
        let (warm_docs, warm_keys, _) = load_documents(&warm_paths);
        briq.align_batch_stored(&warm_docs, &cfg, &store, Some(&warm_keys));
        eprintln!(
            "store: warmed from {dir} ({} documents, {} entries)",
            warm_docs.len(),
            store.len()
        );
        store.reset_counters();
    }

    let repeat = cli.repeat.max(1);
    let mut report = briq.align_batch_stored(&docs, &cfg, &store, Some(&keys));
    for rep in 1..=repeat {
        if rep > 1 {
            store.reset_counters();
            report = briq.align_batch_stored(&docs, &cfg, &store, Some(&keys));
        }
        if repeat > 1 {
            let t = &report.stage_totals;
            eprintln!(
                "repeat {rep}/{repeat}: extract {:.4}s classify {:.4}s filter {:.4}s \
                 resolve {:.4}s wall {:.4}s",
                t.extract_s, t.classify_s, t.filter_s, t.resolve_s, report.wall_s
            );
        }
        if briq.store_effective() {
            eprintln!(
                "store: repeat {rep}/{repeat} lookups {} hits {} hit_rate {:.3} \
                 invalidations {} mentions_realigned {}",
                store.lookups(),
                store.hits(),
                store.hit_rate(),
                store.invalidations(),
                store.mentions_realigned()
            );
        }
    }
    // Compact everything into a snapshot so the next process recovers
    // from one file instead of replaying the whole novelty log.
    if store.persisted() {
        match store.snapshot() {
            Ok(()) => eprintln!(
                "store: persisted {} entr{} ({} snapshot bytes)",
                store.len(),
                if store.len() == 1 { "y" } else { "ies" },
                store.snapshot_bytes(),
            ),
            Err(e) => eprintln!("store: persist failed: {e}"),
        }
    }
    for (doc, dr) in docs.iter().zip(&report.documents) {
        if cli.as_json {
            println!("{}", briq_json::to_string_pretty(&dr.alignments));
        } else {
            println!("document {}: {:.60}…", doc.id, doc.text);
            if dr.alignments.is_empty() {
                println!("  (no alignments)");
            }
            for a in &dr.alignments {
                println!(
                    "  {:24} -> table {} {:12} cells {:?} (value {}, score {:.3})",
                    format!("{:?}", a.mention_raw),
                    a.target.table,
                    a.target.kind.name(),
                    a.target.cells,
                    a.target.value,
                    a.score,
                );
            }
        }
    }

    if let Some(path) = &cli.trace {
        if let Err(e) = std::fs::write(path, report.chrome_trace()) {
            eprintln!("cannot write trace to {path}: {e}");
            return ExitCode::FAILURE;
        }
        eprintln!("trace written to {path} (open in chrome://tracing or ui.perfetto.dev)");
    }
    if let Some(path) = &cli.metrics {
        let metrics = report.merged_metrics();
        if let Err(e) = std::fs::write(path, metrics.to_jsonl()) {
            eprintln!("cannot write metrics to {path}: {e}");
            return ExitCode::FAILURE;
        }
        eprint!("{}", metrics.summary_table());
        eprintln!("metrics written to {path}");
    }

    // Page-level I/O diagnostics lead the stream (they have no batch
    // index), followed by the per-document diagnostics in input order.
    let had_io_errors = !io_diags.is_clean();
    let mut all_diags = io_diags;
    all_diags.items.extend(report.combined_diagnostics().items);
    let jsonl = all_diags.to_jsonl();
    if let Some(path) = &cli.diagnostics {
        if let Err(e) = std::fs::write(path, &jsonl) {
            eprintln!("cannot write diagnostics to {path}: {e}");
            return ExitCode::FAILURE;
        }
    } else if !all_diags.is_clean() {
        eprint!("{jsonl}");
    }
    if had_io_errors {
        eprintln!(
            "{} item(s) degraded during alignment (including unreadable pages)",
            all_diags.items.len()
        );
        ExitCode::FAILURE
    } else if all_diags.is_clean() {
        ExitCode::SUCCESS
    } else {
        eprintln!(
            "{} item(s) degraded during alignment",
            all_diags.items.len()
        );
        ExitCode::from(EXIT_DEGRADED)
    }
}

/// Read, parse, and segment every page, producing the batch documents
/// plus one stable store key per document: FNV of the page *basename*
/// mixed with the segment index within the page. Basename (not full
/// path) keying lets a warm store built from one directory serve a
/// mutated copy of the same corpus in another (CI's store stage).
///
/// An unreadable or non-UTF-8 page degrades to one diagnostic and is
/// skipped; the rest of the batch still aligns. Lossy decoding keeps
/// pages with a few bad bytes (the HTML parser is byte-agnostic);
/// only pages that cannot be opened at all are dropped.
fn load_documents(paths: &[String]) -> (Vec<Document>, Vec<u64>, Diagnostics) {
    let mut docs: Vec<Document> = Vec::new();
    let mut keys: Vec<u64> = Vec::new();
    let mut io_diags = Diagnostics::default();
    for page_path in paths {
        let html = match std::fs::read(page_path) {
            Ok(bytes) => String::from_utf8_lossy(&bytes).into_owned(),
            Err(e) => {
                io_diags.items.push(Diagnostic {
                    stage: Stage::Batch,
                    scope: format!("page {page_path}"),
                    error: format!("cannot read page: {e}"),
                    action: DegradedAction::Skipped,
                });
                eprintln!("cannot read {page_path}: {e} (page skipped)");
                continue;
            }
        };
        let page = parse_page(&html);
        let segmented = segment_page(&page, &SegmentConfig::default(), docs.len());
        if segmented.is_empty() {
            eprintln!("warning: no paragraph/table documents found in {page_path}");
        }
        let base = {
            let mut f = Fingerprint::new();
            let name = std::path::Path::new(page_path)
                .file_name()
                .map(|n| n.to_string_lossy().into_owned())
                .unwrap_or_else(|| page_path.clone());
            f.str(&name);
            f.finish()
        };
        for (si, doc) in segmented.into_iter().enumerate() {
            let mut f = Fingerprint::new();
            f.u64(base);
            f.usize(si);
            keys.push(f.finish());
            docs.push(doc);
        }
    }
    (docs, keys, io_diags)
}

fn parse_cli(args: &[String]) -> Result<Cli, String> {
    let mut cli = Cli {
        pages: Vec::new(),
        jobs: 1,
        as_json: false,
        model: None,
        no_index: false,
        no_csr: false,
        no_store: false,
        store_dir: None,
        store_max_bytes: 0,
        repeat: 1,
        warm_from: None,
        diagnostics: None,
        trace: None,
        metrics: None,
    };
    let mut i = 0;
    while i < args.len() {
        let arg = &args[i];
        let mut value = |name: &str| -> Result<String, String> {
            i += 1;
            args.get(i)
                .cloned()
                .ok_or_else(|| format!("{name} needs a value"))
        };
        match arg.as_str() {
            "--json" => cli.as_json = true,
            "--jobs" => {
                let v = value("--jobs")?;
                cli.jobs = v
                    .parse()
                    .map_err(|_| format!("--jobs: invalid count {v:?}"))?;
            }
            "--model" => cli.model = Some(value("--model")?),
            "--no-index" => cli.no_index = true,
            "--no-csr" => cli.no_csr = true,
            "--no-store" => cli.no_store = true,
            "--store-dir" => cli.store_dir = Some(value("--store-dir")?),
            "--store-max-bytes" => {
                let v = value("--store-max-bytes")?;
                cli.store_max_bytes = v
                    .parse()
                    .map_err(|_| format!("--store-max-bytes: invalid byte count {v:?}"))?;
            }
            "--repeat" => {
                let v = value("--repeat")?;
                cli.repeat = v
                    .parse()
                    .map_err(|_| format!("--repeat: invalid count {v:?}"))?;
                if cli.repeat == 0 {
                    return Err("--repeat: count must be >= 1".into());
                }
            }
            "--warm-from" => cli.warm_from = Some(value("--warm-from")?),
            "--diagnostics" => cli.diagnostics = Some(value("--diagnostics")?),
            "--trace" => cli.trace = Some(value("--trace")?),
            "--metrics" => cli.metrics = Some(value("--metrics")?),
            "--batch" => {
                let dir = value("--batch")?;
                cli.pages.extend(html_files_in(&dir)?);
            }
            _ if arg.starts_with("--") => return Err(format!("unknown flag {arg}")),
            _ => cli.pages.push(arg.clone()),
        }
        i += 1;
    }
    if cli.pages.is_empty() {
        return Err("no input pages (positional paths or --batch dir)".into());
    }
    Ok(cli)
}

/// All `*.html` files in `dir`, sorted by file name so batch order (and
/// therefore output order) is independent of directory enumeration order.
fn html_files_in(dir: &str) -> Result<Vec<String>, String> {
    let entries = std::fs::read_dir(dir).map_err(|e| format!("cannot read {dir}: {e}"))?;
    let mut pages = Vec::new();
    for entry in entries {
        let entry = entry.map_err(|e| format!("cannot read {dir}: {e}"))?;
        let path = entry.path();
        if path.extension().is_some_and(|x| x == "html") {
            pages.push(path.to_string_lossy().into_owned());
        }
    }
    pages.sort();
    if pages.is_empty() {
        return Err(format!("no *.html pages in {dir}"));
    }
    Ok(pages)
}

/// Write a seeded HTML page corpus for batch alignment runs — the
/// workload generator behind CI's determinism stage.
fn gen_corpus(args: &[String]) -> ExitCode {
    use briq_corpus::corpus::CorpusConfig;
    use briq_corpus::page::corpus_pages;

    let Some(dir) = args.get(1).filter(|a| !a.starts_with("--")) else {
        eprintln!("--gen-corpus needs an output directory");
        return ExitCode::FAILURE;
    };
    let docs = usize_flag(args, "--docs").unwrap_or(48);
    let seed = usize_flag(args, "--seed").unwrap_or(20190408) as u64;
    let per_page = usize_flag(args, "--per-page").unwrap_or(3);

    let pages = corpus_pages(
        &CorpusConfig {
            n_documents: docs,
            seed,
            ..Default::default()
        },
        per_page,
    );
    if let Err(e) = std::fs::create_dir_all(dir) {
        eprintln!("cannot create {dir}: {e}");
        return ExitCode::FAILURE;
    }
    for (i, html) in pages.iter().enumerate() {
        let path = format!("{dir}/page_{i:04}.html");
        if let Err(e) = std::fs::write(&path, html) {
            eprintln!("cannot write {path}: {e}");
            return ExitCode::FAILURE;
        }
    }
    eprintln!(
        "wrote {} pages ({docs} documents, seed {seed}) to {dir}",
        pages.len()
    );
    ExitCode::SUCCESS
}

fn usize_flag(args: &[String], flag: &str) -> Option<usize> {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok())
}

fn train_demo(path: &str) -> ExitCode {
    use briq_corpus::annotate::{annotate, AnnotatorConfig};
    use briq_corpus::corpus::{generate_corpus, CorpusConfig};
    use briq_ml::split::random_split;

    eprintln!("training a demo model on a synthetic corpus…");
    let corpus = generate_corpus(&CorpusConfig {
        n_documents: 200,
        seed: 1,
        ..Default::default()
    });
    let mut docs = corpus.documents;
    annotate(&mut docs, &AnnotatorConfig::default());
    let split = random_split(docs.len(), 0.1, 0.0, 1);
    let train: Vec<_> = split.train.iter().map(|&i| docs[i].clone()).collect();
    let val: Vec<_> = split.validation.iter().map(|&i| docs[i].clone()).collect();
    let briq = Briq::train(BriqConfig::default(), &train, &val);
    match briq
        .to_json()
        .map_err(|e| e.to_string())
        .and_then(|s| std::fs::write(path, s).map_err(|e| e.to_string()))
    {
        Ok(()) => {
            eprintln!("model saved to {path}");
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("cannot save model: {e}");
            ExitCode::FAILURE
        }
    }
}
