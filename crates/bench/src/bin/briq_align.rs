//! `briq-align` — align quantities in an HTML page from the command line.
//!
//! ```text
//! briq-align <page.html> [--model model.json] [--json]
//!            [--diagnostics diag.jsonl]
//! briq-align --train-demo model.json      # train on a synthetic corpus
//! ```
//!
//! Without `--model`, the heuristic (untrained) prior is used. With
//! `--train-demo`, a model is trained on the synthetic corpus and saved so
//! subsequent runs can load it.
//!
//! Alignment runs through the budgeted, panic-free `align_checked` path.
//! Every degraded item (skipped table, truncated candidate set,
//! non-converged walk) becomes one JSON object; `--diagnostics` writes
//! them as JSON Lines, otherwise they go to stderr. Exit codes:
//!
//! * `0` — all documents aligned cleanly;
//! * `1` — usage or I/O error;
//! * `2` — alignment completed, but at least one item degraded.

use briq_core::pipeline::{Briq, BriqConfig};
use briq_core::Diagnostics;
use briq_table::html::parse_page;
use briq_table::segment::{segment_page, SegmentConfig};
use std::process::ExitCode;

/// Exit status for a run that finished but had to degrade somewhere.
const EXIT_DEGRADED: u8 = 2;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() {
        eprintln!(
            "usage: briq-align <page.html> [--model model.json] [--json] \
             [--diagnostics diag.jsonl]"
        );
        eprintln!("       briq-align --train-demo <model.json>");
        return ExitCode::FAILURE;
    }

    if args[0] == "--train-demo" {
        let Some(path) = args.get(1) else {
            eprintln!("--train-demo needs an output path");
            return ExitCode::FAILURE;
        };
        return train_demo(path);
    }

    let page_path = &args[0];
    let as_json = args.iter().any(|a| a == "--json");
    let model_path = args
        .iter()
        .position(|a| a == "--model")
        .and_then(|i| args.get(i + 1));
    let diag_path = args
        .iter()
        .position(|a| a == "--diagnostics")
        .and_then(|i| args.get(i + 1));

    let html = match std::fs::read_to_string(page_path) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("cannot read {page_path}: {e}");
            return ExitCode::FAILURE;
        }
    };

    let briq = match model_path {
        Some(p) => match std::fs::read_to_string(p).map_err(|e| e.to_string()).and_then(
            |s| Briq::from_json(&s).map_err(|e| e.to_string()),
        ) {
            Ok(b) => b,
            Err(e) => {
                eprintln!("cannot load model {p}: {e}");
                return ExitCode::FAILURE;
            }
        },
        None => Briq::untrained(BriqConfig::default()),
    };

    let page = parse_page(&html);
    let docs = segment_page(&page, &SegmentConfig::default(), 0);
    if docs.is_empty() {
        eprintln!("no paragraph/table documents found in {page_path}");
        return ExitCode::FAILURE;
    }

    let mut all_diags = Diagnostics::default();
    for doc in &docs {
        let (alignments, diags) = briq.align_checked(doc);
        all_diags.items.extend(diags.items);
        if as_json {
            println!("{}", briq_json::to_string_pretty(&alignments));
        } else {
            println!("document {}: {:.60}…", doc.id, doc.text);
            if alignments.is_empty() {
                println!("  (no alignments)");
            }
            for a in alignments {
                println!(
                    "  {:24} -> table {} {:12} cells {:?} (value {}, score {:.3})",
                    format!("{:?}", a.mention_raw),
                    a.target.table,
                    a.target.kind.name(),
                    a.target.cells,
                    a.target.value,
                    a.score,
                );
            }
        }
    }

    let jsonl = all_diags.to_jsonl();
    if let Some(path) = diag_path {
        if let Err(e) = std::fs::write(path, &jsonl) {
            eprintln!("cannot write diagnostics to {path}: {e}");
            return ExitCode::FAILURE;
        }
    } else if !all_diags.is_clean() {
        eprint!("{jsonl}");
    }
    if all_diags.is_clean() {
        ExitCode::SUCCESS
    } else {
        eprintln!("{} item(s) degraded during alignment", all_diags.items.len());
        ExitCode::from(EXIT_DEGRADED)
    }
}

fn train_demo(path: &str) -> ExitCode {
    use briq_corpus::annotate::{annotate, AnnotatorConfig};
    use briq_corpus::corpus::{generate_corpus, CorpusConfig};
    use briq_ml::split::random_split;

    eprintln!("training a demo model on a synthetic corpus…");
    let corpus = generate_corpus(&CorpusConfig { n_documents: 200, seed: 1, ..Default::default() });
    let mut docs = corpus.documents;
    annotate(&mut docs, &AnnotatorConfig::default());
    let split = random_split(docs.len(), 0.1, 0.0, 1);
    let train: Vec<_> = split.train.iter().map(|&i| docs[i].clone()).collect();
    let val: Vec<_> = split.validation.iter().map(|&i| docs[i].clone()).collect();
    let briq = Briq::train(BriqConfig::default(), &train, &val);
    match briq.to_json().map_err(|e| e.to_string()).and_then(|s| {
        std::fs::write(path, s).map_err(|e| e.to_string())
    }) {
        Ok(()) => {
            eprintln!("model saved to {path}");
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("cannot save model: {e}");
            ExitCode::FAILURE
        }
    }
}
