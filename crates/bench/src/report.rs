//! Plain-text table rendering for experiment reports (the rows printed by
//! `briq-eval` mirror the paper's table layouts so EXPERIMENTS.md can
//! hold paper-vs-measured side by side).

use briq_core::evaluate::EvalReport;
use briq_ml::metrics::Prf;
use std::fmt::Write as _;

/// Fixed mention-type order used by the paper's Tables III–VI.
pub const TYPE_ORDER: [&str; 5] = ["sum", "diff", "percent", "ratio", "single-cell"];

/// Render a metric as the paper does (two decimals).
pub fn fmt(v: f64) -> String {
    format!("{v:.2}")
}

/// A simple aligned text table.
pub struct TextTable {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl TextTable {
    /// Start a table with the given column headers.
    pub fn new(header: &[&str]) -> Self {
        TextTable {
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Append a row (must match header length).
    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.header.len());
        self.rows.push(cells);
    }

    /// Render with aligned columns.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.header.iter().map(String::len).collect();
        for r in &self.rows {
            for (w, c) in widths.iter_mut().zip(r) {
                *w = (*w).max(c.len());
            }
        }
        let mut out = String::new();
        let line = |cells: &[String], widths: &[usize], out: &mut String| {
            for (c, w) in cells.iter().zip(widths) {
                let _ = write!(out, "{c:<width$}  ", width = w);
            }
            out.push('\n');
        };
        line(&self.header, &widths, &mut out);
        let total: usize = widths.iter().sum::<usize>() + 2 * widths.len();
        out.push_str(&"-".repeat(total));
        out.push('\n');
        for r in &self.rows {
            line(r, &widths, &mut out);
        }
        out
    }
}

/// Render a per-type recall/precision/F1 table (paper Tables III–V).
pub fn per_type_table(report: &EvalReport) -> String {
    let mut t = TextTable::new(&["", "sum", "diff", "percent", "ratio", "single-cell"]);
    let metric = |f: fn(&Prf) -> f64| -> Vec<String> {
        TYPE_ORDER
            .iter()
            .map(|k| fmt(f(&report.prf_for(k))))
            .collect()
    };
    let mut row = vec!["recall".to_string()];
    row.extend(metric(|p| p.recall));
    t.row(row);
    let mut row = vec!["prec.".to_string()];
    row.extend(metric(|p| p.precision));
    t.row(row);
    let mut row = vec!["F1".to_string()];
    row.extend(metric(|p| p.f1));
    t.row(row);
    t.render()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned() {
        let mut t = TextTable::new(&["name", "value"]);
        t.row(vec!["alpha".into(), "1".into()]);
        t.row(vec!["b".into(), "12345".into()]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("name"));
        assert!(lines[2].starts_with("alpha"));
    }

    #[test]
    fn fmt_two_decimals() {
        assert_eq!(fmt(0.7341), "0.73");
        assert_eq!(fmt(1.0), "1.00");
    }

    #[test]
    fn per_type_table_has_three_metric_rows() {
        let r = EvalReport::default();
        let s = per_type_table(&r);
        assert_eq!(s.lines().count(), 5);
        assert!(s.contains("single-cell"));
    }
}
