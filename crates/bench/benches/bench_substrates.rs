//! Substrate micro-benchmarks: regex matching, quantity extraction, table
//! parsing, virtual-cell generation, random walks, and forest scoring.
//! These back the component-cost analysis of the Table VIII discussion.

use briq_corpus::corpus::{generate_corpus, CorpusConfig};
use briq_corpus::page::table_to_html;
use briq_graph::{random_walk_with_restart, Graph, RwrConfig};
use briq_ml::{Dataset, RandomForest, RandomForestConfig};
use briq_regex::Regex;
use briq_table::html::parse_page;
use briq_table::virtual_cells::{virtual_cells, VirtualCellConfig};
use briq_table::Table;
use briq_text::extract_quantities;
use criterion::{black_box, criterion_group, criterion_main, Criterion};

const SAMPLE_TEXT: &str = "In 2013 revenue of $3.26 billion CDN was up $70 million \
    CDN or 2% from the previous year. The net income of 2013 was $0.9 billion CDN. \
    Compared to the revenue of 2012, it increased by 1.5%. A total of 123 patients \
    reported side effects, with about 37K EUR in costs and margins up 60 bps to 13.3%.";

fn sample_table() -> Table {
    let c = generate_corpus(&CorpusConfig {
        n_documents: 6,
        seed: 5,
        ..Default::default()
    });
    c.documents
        .iter()
        .flat_map(|d| d.document.tables.iter())
        .max_by_key(|t| t.n_rows * t.n_cols)
        .unwrap()
        .clone()
}

fn bench_regex(c: &mut Criterion) {
    let re = Regex::new(r"\d+(\.\d+)?\s*\p{Currency_Symbol}?").unwrap();
    c.bench_function("regex/find_iter_quantities", |b| {
        b.iter(|| re.find_iter(black_box(SAMPLE_TEXT)).count())
    });
}

fn bench_extraction(c: &mut Criterion) {
    c.bench_function("text/extract_quantities", |b| {
        b.iter(|| extract_quantities(black_box(SAMPLE_TEXT)).len())
    });
}

fn bench_table_parse(c: &mut Criterion) {
    let html = table_to_html(&sample_table());
    c.bench_function("table/html_parse_and_normalize", |b| {
        b.iter(|| {
            let page = parse_page(black_box(&html));
            Table::from_raw(&page.tables[0]).quantity_count()
        })
    });
}

fn bench_virtual_cells(c: &mut Criterion) {
    let table = sample_table();
    let cfg = VirtualCellConfig::default();
    c.bench_function("table/virtual_cells", |b| {
        b.iter(|| virtual_cells(black_box(&table), 0, &cfg).len())
    });
}

fn bench_rwr(c: &mut Criterion) {
    // A graph shaped like a candidate graph: 200 nodes, local structure.
    let mut g = Graph::new(200);
    for i in 0..200usize {
        for d in 1..5usize {
            let j = (i + d * 7) % 200;
            g.add_edge(i, j, 0.3 + (d as f64) * 0.1);
        }
    }
    let cfg = RwrConfig::default();
    c.bench_function("graph/rwr_200_nodes", |b| {
        b.iter(|| random_walk_with_restart(black_box(&g), 0, &cfg))
    });
}

fn bench_forest(c: &mut Criterion) {
    let mut data = Dataset::new();
    for i in 0..600 {
        let x = (i % 100) as f64 / 100.0;
        let y = ((i * 13) % 100) as f64 / 100.0;
        data.push(vec![x, y, x * y, x - y, 1.0 - x], x + y > 1.0);
    }
    let rf = RandomForest::fit(
        &data,
        RandomForestConfig {
            n_trees: 64,
            ..Default::default()
        },
    );
    c.bench_function("ml/forest_train_64", |b| {
        b.iter(|| {
            RandomForest::fit(
                black_box(&data),
                RandomForestConfig {
                    n_trees: 16,
                    ..Default::default()
                },
            )
        })
    });
    c.bench_function("ml/forest_score", |b| {
        b.iter(|| rf.predict_proba(black_box(&[0.4, 0.7, 0.28, -0.3, 0.6])))
    });
}

criterion_group!(
    benches,
    bench_regex,
    bench_extraction,
    bench_table_parse,
    bench_virtual_cells,
    bench_rwr,
    bench_forest
);
criterion_main!(benches);
