//! Pipeline-stage benchmarks: feature computation, scoring, filtering,
//! graph construction + resolution, and full per-document alignment for
//! each domain (the per-document costs behind Table VIII).

use briq_core::features::feature_vector;
use briq_core::graph_builder::build_graph;
use briq_core::mention::text_mentions;
use briq_core::pipeline::{Briq, BriqConfig};
use briq_core::resolution::resolve;
use briq_corpus::corpus::{generate_corpus, CorpusConfig};
use briq_corpus::Domain;
use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};

fn corpus_docs() -> Vec<(Domain, briq_table::Document)> {
    let c = generate_corpus(&CorpusConfig {
        n_documents: 60,
        seed: 12,
        ..Default::default()
    });
    c.domains
        .into_iter()
        .zip(c.documents.into_iter().map(|d| d.document))
        .collect()
}

fn bench_features(c: &mut Criterion) {
    let briq = Briq::untrained(BriqConfig::default());
    let docs = corpus_docs();
    let doc = &docs[0].1;
    let sd = briq.score_document(doc);
    let x = &sd.mentions[0];
    let t = &sd.targets[0];
    c.bench_function("pipeline/feature_vector", |b| {
        b.iter(|| feature_vector(black_box(x), black_box(t), &sd.ctx))
    });
}

fn bench_stages(c: &mut Criterion) {
    let briq = Briq::untrained(BriqConfig::default());
    let docs = corpus_docs();
    let doc = docs
        .iter()
        .find(|(d, _)| *d == Domain::Finance)
        .map(|(_, d)| d.clone())
        .unwrap_or_else(|| docs[0].1.clone());

    c.bench_function("pipeline/score_document", |b| {
        b.iter(|| briq.score_document(black_box(&doc)).targets.len())
    });

    let sd = briq.score_document(&doc);
    c.bench_function("pipeline/adaptive_filter", |b| {
        b.iter(|| briq.filter(black_box(&sd)).0.len())
    });

    let (candidates, _) = briq.filter(&sd);
    let positions: Vec<usize> = sd.ctx.mentions.iter().map(|m| m.token_index).collect();
    c.bench_function("pipeline/graph_build_and_resolve", |b| {
        b.iter(|| {
            let ag = build_graph(
                &sd.mentions,
                &positions,
                sd.ctx.tokens.len(),
                &sd.targets,
                &candidates,
                &briq.cfg.graph,
            );
            resolve(ag, &candidates, &briq.cfg.resolution).len()
        })
    });
}

fn bench_align_by_domain(c: &mut Criterion) {
    let briq = Briq::untrained(BriqConfig::default());
    let docs = corpus_docs();
    let mut group = c.benchmark_group("pipeline/align_by_domain");
    group.sample_size(20);
    for domain in Domain::ALL {
        if let Some((_, doc)) = docs.iter().find(|(d, _)| *d == domain) {
            group.bench_with_input(BenchmarkId::from_parameter(domain.name()), doc, |b, doc| {
                b.iter(|| briq.align(black_box(doc)).len())
            });
        }
    }
    group.finish();
}

fn bench_baselines(c: &mut Criterion) {
    let briq = Briq::untrained(BriqConfig::default());
    let docs = corpus_docs();
    let doc = &docs[0].1;
    let mut group = c.benchmark_group("pipeline/systems");
    group.sample_size(20);
    group.bench_function("briq", |b| b.iter(|| briq.align(black_box(doc)).len()));
    group.bench_function("rf_only", |b| {
        b.iter(|| briq_core::baselines::rf_only(&briq, black_box(doc)).len())
    });
    group.bench_function("rwr_only", |b| {
        b.iter(|| briq_core::baselines::rwr_only(&briq, black_box(doc)).len())
    });
    group.finish();
    // Scale check: text mention extraction per doc.
    c.bench_function("pipeline/text_mentions", |b| {
        b.iter(|| text_mentions(black_box(doc)).len())
    });
}

criterion_group!(
    benches,
    bench_features,
    bench_stages,
    bench_align_by_domain,
    bench_baselines
);
criterion_main!(benches);
