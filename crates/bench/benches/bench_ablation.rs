//! Ablation benchmarks for the design choices DESIGN.md §3 calls out:
//! entropy-ordered resolution, adaptive vs fixed top-k, virtual-cell
//! generation on/off, and the α/β prior mixing (cost side; the quality
//! side is `briq-eval ablation-extra`).

use briq_core::pipeline::{Briq, BriqConfig};
use briq_core::resolution::ResolutionConfig;
use briq_corpus::corpus::{generate_corpus, CorpusConfig};
use criterion::{black_box, criterion_group, criterion_main, Criterion};

fn sample_doc() -> briq_table::Document {
    let c = generate_corpus(&CorpusConfig {
        n_documents: 20,
        seed: 77,
        ..Default::default()
    });
    // pick the largest document (most targets) for a meaningful ablation
    c.documents
        .into_iter()
        .map(|d| d.document)
        .max_by_key(|d| d.tables.iter().map(|t| t.n_rows * t.n_cols).sum::<usize>())
        .unwrap()
}

fn bench_virtual_cell_ablation(c: &mut Criterion) {
    let doc = sample_doc();
    let mut group = c.benchmark_group("ablation/virtual_cells");
    group.sample_size(20);

    let briq_full = Briq::untrained(BriqConfig::default());
    group.bench_function("with_virtual_cells", |b| {
        b.iter(|| briq_full.align(black_box(&doc)).len())
    });

    let mut cfg = BriqConfig::default();
    cfg.virtual_cells.sums = false;
    cfg.virtual_cells.differences = false;
    cfg.virtual_cells.percentages = false;
    cfg.virtual_cells.change_ratios = false;
    let briq_none = Briq::untrained(cfg);
    group.bench_function("without_virtual_cells", |b| {
        b.iter(|| briq_none.align(black_box(&doc)).len())
    });
    group.finish();
}

fn bench_filter_ablation(c: &mut Criterion) {
    let doc = sample_doc();
    let mut group = c.benchmark_group("ablation/filtering");
    group.sample_size(20);

    let adaptive = Briq::untrained(BriqConfig::default());
    group.bench_function("adaptive_topk", |b| {
        b.iter(|| adaptive.align(black_box(&doc)).len())
    });

    let mut cfg = BriqConfig::default();
    cfg.filter.k_exact = 16;
    cfg.filter.k_approx = 16;
    cfg.filter.k_small = 16;
    cfg.filter.k_large = 16;
    let loose = Briq::untrained(cfg);
    group.bench_function("fixed_top16", |b| {
        b.iter(|| loose.align(black_box(&doc)).len())
    });
    group.finish();
}

fn bench_walk_ablation(c: &mut Criterion) {
    let doc = sample_doc();
    let mut group = c.benchmark_group("ablation/walk");
    group.sample_size(20);

    let walk = Briq::untrained(BriqConfig::default());
    group.bench_function("with_walk", |b| {
        b.iter(|| walk.align(black_box(&doc)).len())
    });

    let mut cfg = BriqConfig::default();
    // β = 1: prior-only decisions (the walk still runs but cannot change
    // the argmax; measures the walk's compute share).
    cfg.resolution = ResolutionConfig {
        alpha: 0.0,
        beta: 1.0,
        ..cfg.resolution
    };
    let no_walk = Briq::untrained(cfg);
    group.bench_function("prior_only", |b| {
        b.iter(|| no_walk.align(black_box(&doc)).len())
    });

    let mut tight = BriqConfig::default();
    tight.resolution.tolerance = 1e-4;
    tight.resolution.max_iterations = 20;
    let fast_walk = Briq::untrained(tight);
    group.bench_function("loose_convergence", |b| {
        b.iter(|| fast_walk.align(black_box(&doc)).len())
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_virtual_cell_ablation,
    bench_filter_ablation,
    bench_walk_ablation
);
criterion_main!(benches);
