//! Classifier hot-path microbench: the naive per-pair path (allocate a
//! feature vector, copy it, apply the mask, traverse the recursive
//! forest) against the production path (precomputed [`PairFeaturizer`]
//! rows scored through the mask-baked [`FlatForest`] layout). Both paths
//! produce bit-identical scores; only the cost differs.
//!
//! Besides the ns/iter lines, the bench prints a `classifier-throughput`
//! summary — scored pairs per second over a whole document for each
//! path — which CI's bench-smoke stage records (non-gating on
//! single-core hosts).

use briq_core::classifier::PairClassifier;
use briq_core::features::{feature_vector, FeatureMask, PairFeaturizer, FEATURE_COUNT};
use briq_core::pipeline::{heuristic_prior, heuristic_prior_masked, Briq, BriqConfig};
use briq_corpus::corpus::{generate_corpus, CorpusConfig};
use briq_ml::{Dataset, RandomForestConfig};
use criterion::{black_box, criterion_group, criterion_main, Criterion};
use std::time::Instant;

/// A scored document with enough pairs to exercise the hot loop.
fn scored_doc(briq: &Briq) -> briq_core::pipeline::ScoredDocument {
    let c = generate_corpus(&CorpusConfig {
        n_documents: 12,
        seed: 77,
        ..Default::default()
    });
    // Pick the document with the largest pair count so per-pair setup
    // costs are amortized realistically.
    c.documents
        .iter()
        .map(|d| briq.score_document(&d.document))
        .max_by_key(|sd| sd.mentions.len() * sd.targets.len())
        .expect("corpus is non-empty")
}

/// A trained classifier over synthetic pair data (the bench measures
/// scoring cost, not model quality).
fn trained_classifier(mask: FeatureMask) -> PairClassifier {
    use rand::prelude::*;
    let mut rng = rand::rngs::StdRng::seed_from_u64(7);
    let mut data = Dataset::new();
    for _ in 0..400 {
        let related = rng.random_bool(0.3);
        let mut row = vec![0.0; FEATURE_COUNT];
        for v in row.iter_mut() {
            *v = rng.random_range(0.0..1.0);
        }
        if related {
            row[0] = rng.random_range(0.7..1.0);
            row[5] = rng.random_range(0.0..0.1);
        }
        data.push(row, related);
    }
    data.apply_class_weights();
    PairClassifier::train(&data, RandomForestConfig::default(), mask)
}

fn bench_heuristic_paths(c: &mut Criterion) {
    let briq = Briq::untrained(BriqConfig::default());
    let sd = scored_doc(&briq);
    let mask = briq.cfg.mask;
    let mut group = c.benchmark_group("classifier/heuristic_doc");
    group.sample_size(10);

    // Naive: allocate a fresh 12-feature vector per pair, mask, score.
    group.bench_function("naive", |b| {
        b.iter(|| {
            let mut acc = 0.0f64;
            for x in &sd.mentions {
                for t in &sd.targets {
                    let mut f = feature_vector(x, t, &sd.ctx);
                    mask.apply(&mut f);
                    acc += heuristic_prior(&f);
                }
            }
            acc
        })
    });

    // Production: precomputed invariants, one reused row matrix, masked
    // prior reads in place.
    group.bench_function("precomputed", |b| {
        b.iter(|| {
            let mut fz = PairFeaturizer::new(&sd.mentions, &sd.targets, &sd.ctx);
            let mut rows: Vec<f64> = Vec::new();
            let mut acc = 0.0f64;
            for mi in 0..sd.mentions.len() {
                fz.fill_mention_rows(mi, &mut rows);
                for row in rows.chunks_exact(FEATURE_COUNT) {
                    acc += heuristic_prior_masked(row, &mask);
                }
            }
            acc
        })
    });
    group.finish();
}

fn bench_forest_paths(c: &mut Criterion) {
    let briq = Briq::untrained(BriqConfig::default());
    let sd = scored_doc(&briq);
    let mask = FeatureMask::all();
    let clf = trained_classifier(mask);
    let mut group = c.benchmark_group("classifier/forest_doc");
    group.sample_size(10);

    // Naive: per-pair vector allocation + copy + mask + recursive forest.
    group.bench_function("naive", |b| {
        b.iter(|| {
            let mut acc = 0.0f64;
            for x in &sd.mentions {
                for t in &sd.targets {
                    let f = feature_vector(x, t, &sd.ctx);
                    let mut masked = f.clone();
                    mask.apply(&mut masked);
                    acc += clf.forest().predict_proba(&masked);
                }
            }
            acc
        })
    });

    // Production: featurizer rows through the mask-baked flat forest.
    group.bench_function("precomputed_flat", |b| {
        b.iter(|| {
            let mut fz = PairFeaturizer::new(&sd.mentions, &sd.targets, &sd.ctx);
            let mut rows: Vec<f64> = Vec::new();
            let mut acc = 0.0f64;
            for mi in 0..sd.mentions.len() {
                fz.fill_mention_rows(mi, &mut rows);
                for row in rows.chunks_exact(FEATURE_COUNT) {
                    acc += clf.score(row);
                }
            }
            acc
        })
    });
    group.finish();
}

/// Scored-pairs/sec summary for CI: both paths over the same document,
/// on one thread, printed in a grep-friendly shape.
fn throughput_summary(_c: &mut Criterion) {
    let briq = Briq::untrained(BriqConfig::default());
    let sd = scored_doc(&briq);
    let mask = briq.cfg.mask;
    let pairs = sd.mentions.len() * sd.targets.len();

    let time = |f: &mut dyn FnMut() -> f64| {
        // Warm up once, then take the best of 5 timed passes.
        black_box(f());
        let mut best = f64::INFINITY;
        for _ in 0..5 {
            let start = Instant::now();
            black_box(f());
            best = best.min(start.elapsed().as_secs_f64());
        }
        best
    };

    let naive_s = time(&mut || {
        let mut acc = 0.0;
        for x in &sd.mentions {
            for t in &sd.targets {
                let mut f = feature_vector(x, t, &sd.ctx);
                mask.apply(&mut f);
                acc += heuristic_prior(&f);
            }
        }
        acc
    });
    let fast_s = time(&mut || {
        let mut fz = PairFeaturizer::new(&sd.mentions, &sd.targets, &sd.ctx);
        let mut rows: Vec<f64> = Vec::new();
        let mut acc = 0.0;
        for mi in 0..sd.mentions.len() {
            fz.fill_mention_rows(mi, &mut rows);
            for row in rows.chunks_exact(FEATURE_COUNT) {
                acc += heuristic_prior_masked(row, &mask);
            }
        }
        acc
    });

    let pps = |s: f64| if s > 0.0 { pairs as f64 / s } else { 0.0 };
    println!(
        "classifier-throughput pairs={pairs} naive_pairs_per_sec={:.0} precomputed_pairs_per_sec={:.0} speedup={:.2}x",
        pps(naive_s),
        pps(fast_s),
        if fast_s > 0.0 { naive_s / fast_s } else { 0.0 },
    );

    // Trained-forest comparison: the dense block path (every row through
    // the flat forest) against the batched engine (dedup cache + exact
    // bound-based pruning). Scores agree where both compute; the engine
    // just skips work filtering provably discards. Non-gating — the line
    // exists so CI logs carry the dedup/prune yield per PR.
    let clf = trained_classifier(FeatureMask::all());
    let fcfg = briq_core::filtering::FilterConfig::default();
    let dense_s = time(&mut || {
        let mut fz = PairFeaturizer::new(&sd.mentions, &sd.targets, &sd.ctx);
        let mut rows: Vec<f64> = Vec::new();
        let mut out: Vec<f64> = Vec::new();
        let mut acc = 0.0;
        for mi in 0..sd.mentions.len() {
            fz.fill_mention_rows(mi, &mut rows);
            out.clear();
            out.resize(sd.targets.len(), 0.0);
            clf.flat().score_block(&rows, FEATURE_COUNT, &mut out);
            acc += out.iter().sum::<f64>();
        }
        acc
    });
    let engine_s = time(&mut || {
        let mut fz = PairFeaturizer::new(&sd.mentions, &sd.targets, &sd.ctx);
        let mut engine = briq_core::scoring::ScoringEngine::new();
        let mut acc = 0.0;
        for (mi, x) in sd.mentions.iter().enumerate() {
            engine.fill_rows(&mut fz, mi);
            engine.score_trained(x, &sd.targets, &sd.tags[mi], &clf, &fcfg, true);
            acc += engine.computed().iter().map(|&(_, s)| s).sum::<f64>();
        }
        acc
    });
    // One untimed pass to report the engine's work-avoidance counters.
    let (deduped, pruned) = {
        let mut fz = PairFeaturizer::new(&sd.mentions, &sd.targets, &sd.ctx);
        let mut engine = briq_core::scoring::ScoringEngine::new();
        for (mi, x) in sd.mentions.iter().enumerate() {
            engine.fill_rows(&mut fz, mi);
            engine.score_trained(x, &sd.targets, &sd.tags[mi], &clf, &fcfg, true);
        }
        (engine.rows_deduped(), engine.pairs_pruned())
    };
    println!(
        "classifier-throughput-deduped pairs={pairs} rows_deduped={deduped} pairs_pruned={pruned} dense_pairs_per_sec={:.0} engine_pairs_per_sec={:.0} speedup={:.2}x",
        pps(dense_s),
        pps(engine_s),
        if engine_s > 0.0 { dense_s / engine_s } else { 0.0 },
    );
}

criterion_group!(
    benches,
    bench_heuristic_paths,
    bench_forest_paths,
    throughput_summary
);
criterion_main!(benches);
