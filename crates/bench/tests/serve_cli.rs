//! Binary-level tests for `briq-serve` and the hardened `briq-align`:
//! boot the real server binary, drive it over a real socket, and
//! byte-compare clean responses against the batch CLI — the wire-level
//! slice of the oracle discipline. Also the regression tests for
//! `briq-align --batch` surviving unreadable and non-UTF-8 pages.

use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::process::{Child, Command, Stdio};
use std::time::Duration;

const PAGE: &str = "<html><body>\
    <p>A total of 123 patients reported side effects; depression was \
    the most common, reported by 38 patients, and eye disorders the \
    least common, reported by 5 patients.</p>\
    <table><tr><th>side effects</th><th>male</th><th>female</th>\
    <th>total</th></tr>\
    <tr><td>Rash</td><td>15</td><td>20</td><td>35</td></tr>\
    <tr><td>Depression</td><td>13</td><td>25</td><td>38</td></tr>\
    <tr><td>Hypertension</td><td>19</td><td>15</td><td>34</td></tr>\
    <tr><td>Nausea</td><td>5</td><td>6</td><td>11</td></tr>\
    <tr><td>Eye Disorders</td><td>2</td><td>3</td><td>5</td></tr>\
    </table></body></html>";

fn tmp_dir(name: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("briq_serve_cli_{name}_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// A running `briq-serve serve` child whose port has been parsed from
/// its stdout; killed on drop so a failing test can't leak the process.
struct ServerGuard {
    child: Child,
    addr: String,
}

impl ServerGuard {
    fn spawn(extra: &[&str]) -> ServerGuard {
        let mut child = Command::new(env!("CARGO_BIN_EXE_briq-serve"))
            .arg("serve")
            .args(["--addr", "127.0.0.1:0"])
            .args(extra)
            .stdout(Stdio::piped())
            .stderr(Stdio::null())
            .spawn()
            .expect("spawn briq-serve");
        let stdout = child.stdout.take().expect("child stdout");
        let mut lines = BufReader::new(stdout).lines();
        let first = lines
            .next()
            .expect("server printed nothing")
            .expect("readable stdout");
        let addr = first
            .strip_prefix("listening on ")
            .unwrap_or_else(|| panic!("unexpected first line {first:?}"))
            .to_string();
        ServerGuard { child, addr }
    }

    fn stop_and_wait(mut self) {
        let status = Command::new(env!("CARGO_BIN_EXE_briq-serve"))
            .args(["stop", "--addr", &self.addr])
            .status()
            .expect("run briq-serve stop");
        assert!(status.success(), "stop failed");
        let exit = self.child.wait().expect("server wait");
        assert!(exit.success(), "server exited with {exit:?}");
        // Drop must not kill — already reaped.
        self.child = Command::new("true").spawn().expect("spawn true");
    }
}

impl Drop for ServerGuard {
    fn drop(&mut self) {
        let _ = self.child.kill();
        let _ = self.child.wait();
    }
}

#[test]
fn drive_output_is_byte_identical_to_briq_align_json() {
    let dir = tmp_dir("byteeq");
    let mut pages = Vec::new();
    for i in 0..3 {
        let path = dir.join(format!("page_{i}.html"));
        std::fs::write(&path, PAGE).unwrap();
        pages.push(path);
    }

    let server = ServerGuard::spawn(&[]);
    let drive = Command::new(env!("CARGO_BIN_EXE_briq-serve"))
        .args(["drive", "--addr", &server.addr])
        .args(pages.iter().map(|p| p.as_os_str()))
        .output()
        .expect("run drive");
    assert!(drive.status.success(), "drive failed: {drive:?}");

    let align = Command::new(env!("CARGO_BIN_EXE_briq-align"))
        .arg("--json")
        .args(pages.iter().map(|p| p.as_os_str()))
        .output()
        .expect("run briq-align");
    assert!(align.status.success(), "briq-align failed: {align:?}");

    assert_eq!(
        String::from_utf8_lossy(&drive.stdout),
        String::from_utf8_lossy(&align.stdout),
        "serve and batch outputs drifted"
    );
    assert!(!drive.stdout.is_empty());

    server.stop_and_wait();
}

#[test]
fn server_sheds_deterministically_and_survives_raw_socket_abuse() {
    let server = ServerGuard::spawn(&["--workers", "1", "--queue-depth", "1"]);

    // Raw abuse first: garbage line, then a clean health check on the
    // same connection.
    let mut s = TcpStream::connect(&server.addr).unwrap();
    s.set_read_timeout(Some(Duration::from_secs(30))).unwrap();
    s.write_all(b"utter garbage\n{\"op\":\"health\"}\n")
        .unwrap();
    let mut r = BufReader::new(s.try_clone().unwrap());
    let mut line = String::new();
    r.read_line(&mut line).unwrap();
    assert!(line.contains("\"status\":\"error\""), "{line:?}");
    line.clear();
    r.read_line(&mut line).unwrap();
    assert!(line.contains("\"ready\":true"), "{line:?}");

    // The built-in chaos client is the full harness; --expect-shed
    // asserts the 1-deep queue actually shed under the flood.
    let chaos = Command::new(env!("CARGO_BIN_EXE_briq-serve"))
        .args(["chaos", "--addr", &server.addr])
        .args(["--connections", "12", "--requests", "6", "--expect-shed"])
        .output()
        .expect("run chaos");
    assert!(
        chaos.status.success(),
        "chaos invariants failed:\n{}",
        String::from_utf8_lossy(&chaos.stderr)
    );

    server.stop_and_wait();
}

#[test]
fn briq_align_batch_survives_unreadable_and_non_utf8_pages() {
    let dir = tmp_dir("badpages");
    std::fs::write(dir.join("a_good.html"), PAGE).unwrap();
    // Invalid UTF-8 bytes inside an otherwise plausible page.
    let mut bad = Vec::new();
    bad.extend_from_slice(b"<html><body><p>A total of 123 patients \xff\xfe reported");
    bad.extend_from_slice(b" side effects.</p></body></html>");
    std::fs::write(dir.join("b_nonutf8.html"), &bad).unwrap();

    let missing = dir.join("c_missing.html");
    let diag_path = dir.join("diag.jsonl");
    let out = Command::new(env!("CARGO_BIN_EXE_briq-align"))
        .arg("--json")
        .arg(dir.join("a_good.html"))
        .arg(dir.join("b_nonutf8.html"))
        .arg(&missing)
        .arg("--diagnostics")
        .arg(&diag_path)
        .output()
        .expect("run briq-align");

    // Exit 1 (unreadable page), but the readable pages still aligned:
    // stdout carries their alignment arrays.
    assert_eq!(out.status.code(), Some(1), "{out:?}");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(
        stdout.contains("\"mention_raw\""),
        "good page was not aligned: {stdout}"
    );
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("c_missing.html"), "{stderr}");

    // The unreadable page produced a structured, parseable diagnostic.
    let diags = std::fs::read_to_string(&diag_path).unwrap();
    let page_diag = diags
        .lines()
        .find(|l| l.contains("c_missing.html"))
        .unwrap_or_else(|| panic!("no diagnostic for the missing page in {diags:?}"));
    assert!(page_diag.contains("\"Batch\""), "{page_diag}");
    assert!(page_diag.contains("\"Skipped\""), "{page_diag}");

    // A batch of only unreadable pages still fails cleanly (exit 1, no
    // panic, helpful message).
    let out2 = Command::new(env!("CARGO_BIN_EXE_briq-align"))
        .arg(&missing)
        .output()
        .expect("run briq-align");
    assert_eq!(out2.status.code(), Some(1));
}

#[test]
fn per_request_deadline_of_zero_ms_is_reported_not_hung() {
    let server = ServerGuard::spawn(&[]);
    let mut s = TcpStream::connect(&server.addr).unwrap();
    s.set_read_timeout(Some(Duration::from_secs(30))).unwrap();
    // deadline_ms 1 with queueing makes the token fire essentially
    // immediately; the response must be a structured cancelled result.
    let req = format!(
        "{{\"op\":\"align\",\"id\":5,\"html\":{},\"deadline_ms\":1}}\n",
        briq_json::Value::Str(PAGE.into()).to_string_compact()
    );
    s.write_all(req.as_bytes()).unwrap();
    let mut r = BufReader::new(s);
    let mut line = String::new();
    r.read_line(&mut line).unwrap();
    let v = briq_json::parse(&line).unwrap();
    assert_eq!(
        v.get("status").and_then(briq_json::Value::as_str),
        Some("ok"),
        "{line}"
    );
    // Either the request beat the 1ms deadline (tiny page, fast box) or
    // it was cancelled — both are structured; a hang would time out the
    // read instead.
    server.stop_and_wait();
}
