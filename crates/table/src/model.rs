//! Table and document model.
//!
//! A [`Table`] is a rectangular grid of cell strings with detected header
//! rows/columns, per-row/column unit and scale hints, and parsed cell
//! quantities. A [`Document`] is the unit BriQ aligns over: one paragraph
//! of text plus its related tables (§III). A [`TableMention`] is an
//! alignment target — either an explicit single cell or a virtual cell
//! computed by an aggregation function (§II-A).

use briq_text::cues::AggregationKind;
use briq_text::quantity::{parse_cell_quantity, QuantityMention};
use briq_text::units::{unit_from_header, Unit};
use std::collections::BTreeMap;

use crate::html::RawTable;

/// Reference to a cell by position within a document's table.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct CellRef {
    /// Table index within the document.
    pub table: usize,
    /// Row index (0-based, includes header rows).
    pub row: usize,
    /// Column index (0-based, includes header columns).
    pub col: usize,
}

/// Whether an aggregate spans a row or a column.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Orientation {
    /// Cells taken from one row.
    Row(usize),
    /// Cells taken from one column.
    Column(usize),
}

/// Kind of a table mention.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TableMentionKind {
    /// An explicit single-cell quantity.
    SingleCell,
    /// A composite (virtual-cell) quantity computed by an aggregation.
    Aggregate(AggregationKind),
}

impl TableMentionKind {
    /// Report name, matching the paper's result tables ("single-cell",
    /// "sum", "diff", "percent", "ratio", …).
    pub fn name(self) -> &'static str {
        match self {
            Self::SingleCell => "single-cell",
            Self::Aggregate(k) => k.name(),
        }
    }
}

/// An alignment target in a table: a single cell or a virtual cell.
#[derive(Debug, Clone, PartialEq)]
pub struct TableMention {
    /// Table index within the document.
    pub table: usize,
    /// Kind: single cell or aggregate.
    pub kind: TableMentionKind,
    /// Member cells: one `(row, col)` for single cells; two or more for
    /// virtual cells.
    pub cells: Vec<(usize, usize)>,
    /// Normalized numeric value (header scale hints applied; percentages
    /// and change ratios expressed in percent).
    pub value: f64,
    /// Value as written for single cells (feature f7); equals `value` for
    /// virtual cells computed from unnormalized members.
    pub unnormalized: f64,
    /// Surface form (cell text) for single cells; synthesized description
    /// for virtual cells.
    pub raw: String,
    /// Unit inherited from the member cells / headers.
    pub unit: Unit,
    /// Decimal precision of the surface form (0 for virtual cells).
    pub precision: u8,
    /// Row/column orientation for aggregates.
    pub orientation: Option<Orientation>,
}

impl TableMention {
    /// Order of magnitude of the normalized value.
    pub fn scale(&self) -> i32 {
        briq_text::numparse::order_of_magnitude(self.value)
    }

    /// True for virtual-cell (aggregate) mentions.
    pub fn is_aggregate(&self) -> bool {
        matches!(self.kind, TableMentionKind::Aggregate(_))
    }

    /// The aggregation kind, if this is a virtual cell.
    pub fn aggregation(&self) -> Option<AggregationKind> {
        match self.kind {
            TableMentionKind::Aggregate(k) => Some(k),
            TableMentionKind::SingleCell => None,
        }
    }
}

/// A parsed, normalized web table.
#[derive(Debug, Clone, PartialEq)]
pub struct Table {
    /// Caption text (may be empty).
    pub caption: String,
    /// Rectangular grid of cell strings (padded with empty strings).
    pub cells: Vec<Vec<String>>,
    /// Number of rows (including headers).
    pub n_rows: usize,
    /// Number of columns (including headers).
    pub n_cols: usize,
    /// Leading header rows detected (0 or 1).
    pub header_rows: usize,
    /// Leading header columns detected (0 or 1).
    pub header_cols: usize,
    /// Parsed quantities of data cells, keyed by `(row, col)`. Serialized
    /// as an entry list because JSON map keys must be strings.
    quantities: BTreeMap<(usize, usize), QuantityMention>,
    /// Per-column unit/scale hints from the column headers.
    pub col_hints: Vec<(Unit, Option<f64>)>,
    /// Per-row unit/scale hints from the row headers.
    pub row_hints: Vec<(Unit, Option<f64>)>,
    /// Unit/scale hint from the caption.
    pub caption_hint: (Unit, Option<f64>),
}

impl Table {
    /// Build a normalized [`Table`] from parsed HTML.
    pub fn from_raw(raw: &RawTable) -> Table {
        let n_rows = raw.rows.len();
        let n_cols = raw.rows.iter().map(Vec::len).max().unwrap_or(0);
        let mut cells: Vec<Vec<String>> = raw
            .rows
            .iter()
            .map(|r| {
                let mut r = r.clone();
                r.resize(n_cols, String::new());
                r
            })
            .collect();
        for row in &mut cells {
            for c in row.iter_mut() {
                *c = c.trim().to_string();
            }
        }

        let numeric = |s: &String| parse_cell_quantity(s).is_some();

        // Header-row detection: explicit <th> flags, else content shape.
        let th_row = raw
            .header_flags
            .first()
            .is_some_and(|f| !f.is_empty() && f.iter().all(|&h| h));
        let mostly_text_first_row = n_rows > 1
            && cells[0].iter().filter(|c| !c.is_empty()).count() > 0
            && cells[0].iter().filter(|c| numeric(c)).count() * 3
                <= cells[0].iter().filter(|c| !c.is_empty()).count()
            && cells[1..].iter().any(|r| r.iter().any(numeric));
        let header_rows = usize::from(th_row || mostly_text_first_row);

        // Header-column detection (rotated tables, Fig. 1b/1c).
        let th_col = raw
            .header_flags
            .iter()
            .filter(|f| !f.is_empty())
            .all(|f| f[0])
            && raw.header_flags.iter().any(|f| !f.is_empty());
        // `filter_map(first)`: a zero-column grid (all rows empty) must not
        // index into its rows.
        let first_col: Vec<&String> = cells
            .iter()
            .skip(header_rows)
            .filter_map(|r| r.first())
            .collect();
        let mostly_text_first_col = n_cols > 1
            && !first_col.is_empty()
            && first_col.iter().filter(|c| numeric(c)).count() * 3
                <= first_col.iter().filter(|c| !c.is_empty()).count().max(1)
            && first_col.iter().any(|c| !c.is_empty());
        let header_cols = usize::from((th_col && !th_row) || mostly_text_first_col);

        // Unit/scale hints.
        let caption_hint = unit_from_header(&raw.caption);
        let col_hints: Vec<(Unit, Option<f64>)> = (0..n_cols)
            .map(|c| {
                if header_rows > 0 {
                    unit_from_header(&cells[0][c])
                } else {
                    (Unit::None, None)
                }
            })
            .collect();
        let row_hints: Vec<(Unit, Option<f64>)> = (0..n_rows)
            .map(|r| {
                if header_cols > 0 {
                    unit_from_header(&cells[r][0])
                } else {
                    (Unit::None, None)
                }
            })
            .collect();

        let mut table = Table {
            caption: raw.caption.clone(),
            cells,
            n_rows,
            n_cols,
            header_rows,
            header_cols,
            quantities: BTreeMap::new(),
            col_hints,
            row_hints,
            caption_hint,
        };
        table.parse_cells();
        table
    }

    /// Construct directly from a grid of strings (tests, corpus synthesis).
    pub fn from_grid(caption: &str, grid: Vec<Vec<String>>) -> Table {
        let header_flags = grid.iter().map(|r| vec![false; r.len()]).collect();
        Table::from_raw(&RawTable {
            caption: caption.to_string(),
            rows: grid,
            header_flags,
        })
    }

    fn parse_cells(&mut self) {
        for r in self.header_rows..self.n_rows {
            for c in self.header_cols..self.n_cols {
                if let Some(mut q) = parse_cell_quantity(&self.cells[r][c]) {
                    // Fill unit from hints: column, then row, then caption.
                    if q.unit == Unit::None {
                        for (u, _) in [self.col_hints[c], self.row_hints[r], self.caption_hint] {
                            if u != Unit::None {
                                q.unit = u;
                                break;
                            }
                        }
                    }
                    // Apply scale hint only when the cell itself carried no
                    // scale word (value still equals the literal numeral),
                    // and never to percentages.
                    #[allow(clippy::float_cmp)]
                    if q.value == q.unnormalized
                        && !matches!(q.unit, Unit::Percent | Unit::BasisPoints)
                    {
                        let hint = self.col_hints[c]
                            .1
                            .or(self.row_hints[r].1)
                            .or(self.caption_hint.1);
                        if let Some(m) = hint {
                            q.value *= m;
                        }
                    }
                    self.quantities.insert((r, c), q);
                }
            }
        }
    }

    /// Parsed quantity of cell `(r, c)`, if it is a data cell holding one.
    pub fn quantity(&self, r: usize, c: usize) -> Option<&QuantityMention> {
        self.quantities.get(&(r, c))
    }

    /// Iterate over all parsed data-cell quantities.
    pub fn quantities(&self) -> impl Iterator<Item = (&(usize, usize), &QuantityMention)> {
        self.quantities.iter()
    }

    /// Number of data cells holding parsed quantities.
    pub fn quantity_count(&self) -> usize {
        self.quantities.len()
    }

    /// Concatenated text of row `r` (headers included) — the table-mention
    /// local context of feature f2 is this plus [`Table::col_text`].
    pub fn row_text(&self, r: usize) -> String {
        self.cells[r].join(" ")
    }

    /// Concatenated text of column `c` (headers included).
    pub fn col_text(&self, c: usize) -> String {
        self.cells
            .iter()
            .map(|row| row[c].as_str())
            .collect::<Vec<_>>()
            .join(" ")
    }

    /// Entire table content including caption — the table-mention global
    /// context of feature f3.
    pub fn full_text(&self) -> String {
        let mut s = self.caption.clone();
        for row in &self.cells {
            s.push(' ');
            s.push_str(&row.join(" "));
        }
        s
    }

    /// Data row indices (header rows excluded).
    pub fn data_rows(&self) -> std::ops::Range<usize> {
        self.header_rows..self.n_rows
    }

    /// Data column indices (header columns excluded).
    pub fn data_cols(&self) -> std::ops::Range<usize> {
        self.header_cols..self.n_cols
    }
}

briq_json::json_struct!(CellRef { table, row, col });
briq_json::json_enum!(Orientation { Row(usize), Column(usize) });
briq_json::json_enum!(TableMentionKind { SingleCell, Aggregate(AggregationKind) });
briq_json::json_struct!(TableMention {
    table,
    kind,
    cells,
    value,
    unnormalized,
    raw,
    unit,
    precision,
    orientation,
});
// The `(row, col)`-keyed quantity map relies on briq-json's BTreeMap
// encoding (an entry list), since JSON map keys must be strings.
briq_json::json_struct!(Table {
    caption,
    cells,
    n_rows,
    n_cols,
    header_rows,
    header_cols,
    quantities,
    col_hints,
    row_hints,
    caption_hint,
});

/// A coherent document: one paragraph plus its related tables (§III).
#[derive(Debug, Clone, PartialEq)]
pub struct Document {
    /// Document id (unique within a page/corpus run).
    pub id: usize,
    /// The paragraph text.
    pub text: String,
    /// Related tables.
    pub tables: Vec<Table>,
}

impl Document {
    /// Create a document from a paragraph and tables.
    pub fn new(id: usize, text: impl Into<String>, tables: Vec<Table>) -> Self {
        Document {
            id,
            text: text.into(),
            tables,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use briq_text::units::Currency;

    fn grid(rows: &[&[&str]]) -> Vec<Vec<String>> {
        rows.iter()
            .map(|r| r.iter().map(|s| s.to_string()).collect())
            .collect()
    }

    #[test]
    fn header_row_detected_by_content() {
        let t = Table::from_grid(
            "",
            grid(&[
                &["side effects", "male", "female", "total"],
                &["Rash", "15", "20", "35"],
                &["Depression", "13", "25", "38"],
            ]),
        );
        assert_eq!(t.header_rows, 1);
        assert_eq!(t.header_cols, 1);
        assert_eq!(t.quantity(1, 1).unwrap().value, 15.0);
        assert!(t.quantity(0, 1).is_none());
        assert!(t.quantity(1, 0).is_none());
    }

    #[test]
    fn rotated_table_header_col() {
        // Fig. 1b: attribute names in the first column.
        let t = Table::from_grid(
            "",
            grid(&[
                &["", "Focus E", "A3", "VW Golf"],
                &["German MSRP", "34900", "36900", "33800"],
                &["Emission (g/km)", "0", "105", "122"],
            ]),
        );
        assert_eq!(t.header_cols, 1);
        assert_eq!(t.quantity(1, 2).unwrap().value, 36900.0);
    }

    #[test]
    fn caption_scale_hint_applied() {
        let t = Table::from_grid(
            "Income gains (in Mio)",
            grid(&[&["", "2013", "2012"], &["Total Revenue", "3,263", "3,193"]]),
        );
        let q = t.quantity(1, 1).unwrap();
        assert_eq!(q.value, 3.263e9);
        assert_eq!(q.unnormalized, 3263.0);
    }

    #[test]
    fn column_header_unit_and_scale() {
        let t = Table::from_grid(
            "",
            grid(&[&["Company", "($ Millions)"], &["Acme", "232.8"]]),
        );
        let q = t.quantity(1, 1).unwrap();
        assert_eq!(q.unit, Unit::Currency(Currency::Usd));
        assert_eq!(q.value, 232.8e6);
    }

    #[test]
    fn percent_cells_not_scaled() {
        let t = Table::from_grid(
            "Figures ($ Millions)",
            grid(&[
                &["metric", "value"],
                &["Margin", "12.7%"],
                &["Sales", "900"],
            ]),
        );
        assert_eq!(t.quantity(1, 1).unwrap().value, 12.7);
        assert_eq!(t.quantity(2, 1).unwrap().value, 900.0e6);
    }

    #[test]
    fn explicit_cell_scale_beats_hint() {
        let t = Table::from_grid(
            "Figures (in Mio)",
            grid(&[&["metric", "value"], &["Net", "$0.9 billion"]]),
        );
        assert_eq!(t.quantity(1, 1).unwrap().value, 0.9e9);
    }

    #[test]
    fn ragged_rows_padded() {
        let t = Table::from_grid("", grid(&[&["a", "b", "c"], &["1"]]));
        assert_eq!(t.n_cols, 3);
        assert_eq!(t.cells[1], vec!["1", "", ""]);
    }

    #[test]
    fn row_col_text() {
        let t = Table::from_grid("cap", grid(&[&["h1", "h2"], &["x", "5"]]));
        assert_eq!(t.row_text(1), "x 5");
        assert_eq!(t.col_text(1), "h2 5");
        assert!(t.full_text().starts_with("cap"));
    }

    #[test]
    fn all_numeric_table_has_no_headers() {
        let t = Table::from_grid("", grid(&[&["1", "2"], &["3", "4"]]));
        assert_eq!(t.header_rows, 0);
        assert_eq!(t.header_cols, 0);
        assert_eq!(t.quantity_count(), 4);
    }

    #[test]
    fn mention_kind_names() {
        assert_eq!(TableMentionKind::SingleCell.name(), "single-cell");
        assert_eq!(
            TableMentionKind::Aggregate(AggregationKind::Sum).name(),
            "sum"
        );
    }
}

briq_json::json_struct!(Document { id, text, tables });
