//! # briq-table
//!
//! Web-table substrate for BriQ: parsing ad-hoc HTML tables, modelling
//! their content, segmenting pages into coherent documents (a paragraph
//! plus its related tables, §III), extracting single-cell quantity
//! mentions, and generating *virtual cells* for aggregated quantities
//! (§II-A).
//!
//! ```
//! use briq_table::html::parse_page;
//! use briq_table::model::Table;
//!
//! let page = parse_page(r#"
//!   <p>A total of 123 patients reported side effects.</p>
//!   <table><tr><th>effect</th><th>total</th></tr>
//!          <tr><td>Rash</td><td>35</td></tr>
//!          <tr><td>Depression</td><td>88</td></tr></table>
//! "#);
//! assert_eq!(page.paragraphs.len(), 1);
//! let table = Table::from_raw(&page.tables[0]);
//! assert_eq!(table.n_rows, 3);
//! assert!(table.quantity(1, 1).is_some());
//! ```

#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

pub mod error;
pub mod extract;
pub mod html;
pub mod model;
pub mod segment;
pub mod stats;
pub mod virtual_cells;

pub use error::TableError;
pub use model::{CellRef, Document, Orientation, Table, TableMention, TableMentionKind};
pub use segment::segment_page;
