//! Virtual-cell generation for composite quantities (§II-A).
//!
//! For every table we generate candidates for the aggregation functions:
//!
//! * **sum / average / min / max** over entire rows and entire columns —
//!   `O(r + c)` candidates;
//! * **difference / percentage / change ratio** over pairs of cells in the
//!   same row or column — `O(binom(r,2) + binom(c,2))` candidates.
//!
//! These exist even when the table shows no explicit total, because the
//! surrounding text may still refer to one. The quadratic pair space is the
//! reason BriQ needs adaptive filtering (§V); generation itself applies
//! only cheap sanity pruning (unit compatibility, degenerate values) plus a
//! configurable per-line cell cap for pathological tables.

use briq_text::cues::AggregationKind;
use briq_text::units::Unit;

use crate::model::{Orientation, Table, TableMention, TableMentionKind};

/// Configuration for virtual-cell generation.
#[derive(Debug, Clone)]
pub struct VirtualCellConfig {
    /// Generate sum virtual cells.
    pub sums: bool,
    /// Generate difference virtual cells.
    pub differences: bool,
    /// Generate percentage virtual cells.
    pub percentages: bool,
    /// Generate change-ratio virtual cells.
    pub change_ratios: bool,
    /// Generate average/min/max (the extended set beyond the paper's
    /// evaluated four; §II-A keeps them in the framework).
    pub extended: bool,
    /// Cap on numeric cells per row/column considered for pair aggregates;
    /// lines longer than this are truncated (left-to-right / top-down).
    pub max_line_cells: usize,
    /// Require at least this fraction of a line's data cells to be numeric
    /// for line aggregates (sum/avg/min/max).
    pub min_numeric_fraction: f64,
}

impl Default for VirtualCellConfig {
    fn default() -> Self {
        VirtualCellConfig {
            sums: true,
            differences: true,
            percentages: true,
            change_ratios: true,
            extended: false,
            max_line_cells: 16,
            min_numeric_fraction: 0.6,
        }
    }
}

/// One numeric cell on a line.
#[derive(Clone, Copy)]
struct LineCell {
    pos: (usize, usize),
    value: f64,
    unit: Unit,
}

/// Generate all virtual cells for `table` under `cfg`, without a cap.
pub fn virtual_cells(
    table: &Table,
    table_idx: usize,
    cfg: &VirtualCellConfig,
) -> Vec<TableMention> {
    virtual_cells_capped(table, table_idx, cfg, usize::MAX).0
}

/// Generate virtual cells for `table`, stopping once `max_cells`
/// candidates exist. Returns the candidates and whether generation was
/// truncated — a wide-and-tall adversarial table has a quadratic pair
/// space per line times `rows + cols` lines, and the cap bounds both the
/// work and the memory instead of letting one table starve the document.
pub fn virtual_cells_capped(
    table: &Table,
    table_idx: usize,
    cfg: &VirtualCellConfig,
    max_cells: usize,
) -> (Vec<TableMention>, bool) {
    let mut sink = Sink {
        out: Vec::new(),
        max: max_cells,
        truncated: false,
    };
    // Rows.
    for r in table.data_rows() {
        if sink.full() {
            break;
        }
        let cells: Vec<LineCell> = table
            .data_cols()
            .filter_map(|c| {
                table.quantity(r, c).map(|q| LineCell {
                    pos: (r, c),
                    value: q.value,
                    unit: q.unit,
                })
            })
            .collect();
        let total = table.data_cols().len();
        line_aggregates(
            &cells,
            total,
            Orientation::Row(r),
            table_idx,
            cfg,
            &mut sink,
        );
    }
    // Columns.
    for c in table.data_cols() {
        if sink.full() {
            break;
        }
        let cells: Vec<LineCell> = table
            .data_rows()
            .filter_map(|r| {
                table.quantity(r, c).map(|q| LineCell {
                    pos: (r, c),
                    value: q.value,
                    unit: q.unit,
                })
            })
            .collect();
        let total = table.data_rows().len();
        line_aggregates(
            &cells,
            total,
            Orientation::Column(c),
            table_idx,
            cfg,
            &mut sink,
        );
    }
    (sink.out, sink.truncated)
}

/// Bounded candidate collector: refuses pushes past `max` and remembers
/// that it did.
struct Sink {
    out: Vec<TableMention>,
    max: usize,
    truncated: bool,
}

impl Sink {
    fn full(&mut self) -> bool {
        if self.out.len() >= self.max {
            self.truncated = true;
            return true;
        }
        false
    }

    fn push(&mut self, m: TableMention) {
        if !self.full() {
            self.out.push(m);
        }
    }
}

fn is_percentish(u: Unit) -> bool {
    matches!(u, Unit::Percent | Unit::BasisPoints)
}

fn units_compatible(cells: &[LineCell]) -> bool {
    // Percentages never aggregate with non-percentages — `900 + 5%` is
    // meaningless even though the 900 carries no explicit unit.
    let any_pct = cells.iter().any(|c| is_percentish(c.unit));
    let any_non_pct = cells.iter().any(|c| !is_percentish(c.unit));
    if any_pct && any_non_pct {
        return false;
    }
    let mut found: Option<Unit> = None;
    for c in cells {
        if c.unit == Unit::None {
            continue;
        }
        match found {
            None => found = Some(c.unit),
            Some(u) => {
                if !u.matches(c.unit) {
                    return false;
                }
            }
        }
    }
    true
}

fn common_unit(cells: &[LineCell]) -> Unit {
    cells
        .iter()
        .map(|c| c.unit)
        .find(|&u| u != Unit::None)
        .unwrap_or(Unit::None)
}

fn line_aggregates(
    cells: &[LineCell],
    line_len: usize,
    orientation: Orientation,
    table_idx: usize,
    cfg: &VirtualCellConfig,
    out: &mut Sink,
) {
    if cells.len() < 2 {
        return;
    }
    let cells = &cells[..cells.len().min(cfg.max_line_cells)];
    let numeric_fraction = cells.len() as f64 / line_len.max(1) as f64;

    // Full-line aggregates.
    if units_compatible(cells) && numeric_fraction >= cfg.min_numeric_fraction {
        let unit = common_unit(cells);
        let positions: Vec<(usize, usize)> = cells.iter().map(|c| c.pos).collect();
        let values: Vec<f64> = cells.iter().map(|c| c.value).collect();
        if cfg.sums {
            push_line(
                out,
                table_idx,
                AggregationKind::Sum,
                &positions,
                values.iter().sum(),
                unit,
                orientation,
            );
        }
        if cfg.extended {
            let n = values.len() as f64;
            push_line(
                out,
                table_idx,
                AggregationKind::Average,
                &positions,
                values.iter().sum::<f64>() / n,
                unit,
                orientation,
            );
            let max = values.iter().copied().fold(f64::NEG_INFINITY, f64::max);
            let min = values.iter().copied().fold(f64::INFINITY, f64::min);
            push_line(
                out,
                table_idx,
                AggregationKind::Max,
                &positions,
                max,
                unit,
                orientation,
            );
            push_line(
                out,
                table_idx,
                AggregationKind::Min,
                &positions,
                min,
                unit,
                orientation,
            );
        }
    }

    // Pair aggregates.
    for i in 0..cells.len() {
        if out.full() {
            return;
        }
        for j in (i + 1)..cells.len() {
            let (a, b) = (cells[i], cells[j]);
            let pair_unit_ok =
                (a.unit == Unit::None || b.unit == Unit::None || a.unit.matches(b.unit))
                    && is_percentish(a.unit) == is_percentish(b.unit);
            if cfg.differences && pair_unit_ok {
                // |a − b|: text rarely mentions signed differences; the
                // larger-minus-smaller convention matches "up $70 million".
                let v = (a.value - b.value).abs();
                if v.is_finite() && v > 0.0 {
                    push_pair(
                        out,
                        table_idx,
                        AggregationKind::Difference,
                        a,
                        b,
                        v,
                        common_unit(&[a, b]),
                        orientation,
                    );
                }
            }
            if cfg.percentages {
                // a/b·100 and b/a·100 (both directions are plausible).
                for (x, y) in [(a, b), (b, a)] {
                    if y.value != 0.0 {
                        let v = x.value / y.value * 100.0;
                        if v.is_finite() && v > 0.0 && v <= 10_000.0 {
                            push_pair(
                                out,
                                table_idx,
                                AggregationKind::Percentage,
                                x,
                                y,
                                v,
                                Unit::Percent,
                                orientation,
                            );
                        }
                    }
                }
            }
            if cfg.change_ratios {
                // (a−b)/a·100, both directions, expressed in percent.
                for (x, y) in [(a, b), (b, a)] {
                    if x.value != 0.0 {
                        let v = (x.value - y.value) / x.value * 100.0;
                        if v.is_finite() && v.abs() > 1e-12 && v.abs() <= 10_000.0 {
                            push_pair(
                                out,
                                table_idx,
                                AggregationKind::ChangeRatio,
                                x,
                                y,
                                v.abs(),
                                Unit::Percent,
                                orientation,
                            );
                        }
                    }
                }
            }
        }
    }
}

fn push_line(
    out: &mut Sink,
    table_idx: usize,
    kind: AggregationKind,
    positions: &[(usize, usize)],
    value: f64,
    unit: Unit,
    orientation: Orientation,
) {
    if !value.is_finite() {
        return;
    }
    out.push(TableMention {
        table: table_idx,
        kind: TableMentionKind::Aggregate(kind),
        cells: positions.to_vec(),
        value,
        unnormalized: value,
        raw: format!("{}({:?})", kind.name(), orientation),
        unit,
        precision: 0,
        orientation: Some(orientation),
    });
}

#[allow(clippy::too_many_arguments)]
fn push_pair(
    out: &mut Sink,
    table_idx: usize,
    kind: AggregationKind,
    a: LineCell,
    b: LineCell,
    value: f64,
    unit: Unit,
    orientation: Orientation,
) {
    out.push(TableMention {
        table: table_idx,
        kind: TableMentionKind::Aggregate(kind),
        cells: vec![a.pos, b.pos],
        value,
        unnormalized: value,
        raw: format!("{}({:?},{:?})", kind.name(), a.pos, b.pos),
        unit,
        precision: 0,
        orientation: Some(orientation),
    });
}

/// All table mentions of a document: single cells plus virtual cells.
pub fn all_table_mentions(tables: &[Table], cfg: &VirtualCellConfig) -> Vec<TableMention> {
    all_table_mentions_capped(tables, cfg, usize::MAX).0
}

/// Budgeted variant of [`all_table_mentions`]: virtual-cell generation for
/// each table stops at `max_cells_per_table`. Returns the mentions plus
/// the indices of tables whose candidate lists were truncated, so callers
/// can surface a diagnostic per degraded table.
pub fn all_table_mentions_capped(
    tables: &[Table],
    cfg: &VirtualCellConfig,
    max_cells_per_table: usize,
) -> (Vec<TableMention>, Vec<usize>) {
    let mut out = crate::extract::document_single_cells(tables);
    let mut truncated_tables = Vec::new();
    for (i, t) in tables.iter().enumerate() {
        let (vc, truncated) = virtual_cells_capped(t, i, cfg, max_cells_per_table);
        if truncated {
            truncated_tables.push(i);
        }
        out.extend(vc);
    }
    (out, truncated_tables)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn health_table() -> Table {
        // Fig. 1a
        let grid: Vec<Vec<String>> = vec![
            vec!["side effects", "male", "female", "total"],
            vec!["Rash", "15", "20", "35"],
            vec!["Depression", "13", "25", "38"],
            vec!["Hypertension", "19", "15", "34"],
            vec!["Nausea", "5", "6", "11"],
            vec!["Eye Disorders", "2", "3", "5"],
        ]
        .into_iter()
        .map(|r| r.into_iter().map(String::from).collect())
        .collect();
        Table::from_grid("", grid)
    }

    #[test]
    fn column_sum_present() {
        let t = health_table();
        let vc = virtual_cells(&t, 0, &VirtualCellConfig::default());
        // Column 'total' (index 3) sums to 123 — the "total of 123
        // patients" target from Fig. 1a.
        let sum123 = vc.iter().find(|m| {
            m.kind == TableMentionKind::Aggregate(AggregationKind::Sum)
                && m.orientation == Some(Orientation::Column(3))
        });
        assert_eq!(sum123.unwrap().value, 123.0);
    }

    #[test]
    fn row_sums_present() {
        let t = health_table();
        let vc = virtual_cells(&t, 0, &VirtualCellConfig::default());
        let row1_sum = vc
            .iter()
            .find(|m| {
                m.kind == TableMentionKind::Aggregate(AggregationKind::Sum)
                    && m.orientation == Some(Orientation::Row(1))
            })
            .unwrap();
        assert_eq!(row1_sum.value, 15.0 + 20.0 + 35.0);
        assert_eq!(row1_sum.cells.len(), 3);
    }

    #[test]
    fn change_ratio_fig1c() {
        // ratio('890','876') ≈ 1.57% — "increased by 1.5%".
        let grid: Vec<Vec<String>> = vec![vec!["", "2013", "2012"], vec!["Income", "890", "876"]]
            .into_iter()
            .map(|r| r.into_iter().map(String::from).collect())
            .collect();
        let t = Table::from_grid("", grid);
        let vc = virtual_cells(&t, 0, &VirtualCellConfig::default());
        let ratio = vc
            .iter()
            .filter(|m| m.kind == TableMentionKind::Aggregate(AggregationKind::ChangeRatio))
            .find(|m| (m.value - 1.573).abs() < 0.01);
        assert!(ratio.is_some(), "{vc:?}");
    }

    #[test]
    fn differences_are_positive() {
        let t = health_table();
        let vc = virtual_cells(&t, 0, &VirtualCellConfig::default());
        for m in vc
            .iter()
            .filter(|m| m.kind == TableMentionKind::Aggregate(AggregationKind::Difference))
        {
            assert!(m.value > 0.0);
            assert_eq!(m.cells.len(), 2);
        }
    }

    #[test]
    fn extended_aggregates_off_by_default() {
        let t = health_table();
        let vc = virtual_cells(&t, 0, &VirtualCellConfig::default());
        assert!(!vc.iter().any(|m| matches!(
            m.kind,
            TableMentionKind::Aggregate(AggregationKind::Average)
                | TableMentionKind::Aggregate(AggregationKind::Max)
                | TableMentionKind::Aggregate(AggregationKind::Min)
        )));
    }

    #[test]
    fn extended_aggregates_on_demand() {
        let t = health_table();
        let cfg = VirtualCellConfig {
            extended: true,
            ..Default::default()
        };
        let vc = virtual_cells(&t, 0, &cfg);
        let max_col3 = vc
            .iter()
            .find(|m| {
                m.kind == TableMentionKind::Aggregate(AggregationKind::Max)
                    && m.orientation == Some(Orientation::Column(3))
            })
            .unwrap();
        assert_eq!(max_col3.value, 38.0);
        let avg = vc
            .iter()
            .find(|m| {
                m.kind == TableMentionKind::Aggregate(AggregationKind::Average)
                    && m.orientation == Some(Orientation::Column(3))
            })
            .unwrap();
        assert!((avg.value - 24.6).abs() < 1e-9);
    }

    #[test]
    fn mixed_units_block_line_aggregates() {
        let grid: Vec<Vec<String>> = vec![
            vec!["metric", "value"],
            vec!["Sales", "$900"],
            vec!["Margin", "12.7%"],
        ]
        .into_iter()
        .map(|r| r.into_iter().map(String::from).collect())
        .collect();
        let t = Table::from_grid("", grid);
        let vc = virtual_cells(&t, 0, &VirtualCellConfig::default());
        assert!(!vc.iter().any(
            |m| m.kind == TableMentionKind::Aggregate(AggregationKind::Sum)
                && m.orientation == Some(Orientation::Column(1))
        ));
    }

    #[test]
    fn line_cap_respected() {
        let mut grid: Vec<Vec<String>> = vec![(0..30).map(|i| format!("{i}")).collect()];
        grid.push((0..30).map(|i| format!("{}", i * 2)).collect());
        let t = Table::from_grid("", grid);
        let cfg = VirtualCellConfig {
            max_line_cells: 5,
            ..Default::default()
        };
        let vc = virtual_cells(&t, 0, &cfg);
        for m in &vc {
            assert!(m.cells.len() <= 5);
        }
    }

    #[test]
    fn counts_scale_with_config() {
        let t = health_table();
        let all = virtual_cells(&t, 0, &VirtualCellConfig::default()).len();
        let cfg = VirtualCellConfig {
            differences: false,
            percentages: false,
            change_ratios: false,
            ..Default::default()
        };
        let sums_only = virtual_cells(&t, 0, &cfg).len();
        assert!(sums_only < all);
        // 5 data rows + 3 data cols = 8 possible sums
        assert_eq!(sums_only, 8);
    }

    #[test]
    fn per_table_budget_truncates_and_reports() {
        let t = health_table();
        let (all, truncated) =
            virtual_cells_capped(&t, 0, &VirtualCellConfig::default(), usize::MAX);
        assert!(!truncated);
        let cap = all.len() / 2;
        let (some, truncated) = virtual_cells_capped(&t, 0, &VirtualCellConfig::default(), cap);
        assert!(truncated);
        assert_eq!(some.len(), cap);
        // The capped prefix is a prefix of the uncapped list — generation
        // order is deterministic, so clean inputs below the cap are
        // bit-identical with and without the budget.
        assert_eq!(&all[..cap], &some[..]);
        let (mentions, truncated_tables) =
            all_table_mentions_capped(&[health_table()], &VirtualCellConfig::default(), cap);
        assert_eq!(truncated_tables, vec![0]);
        assert!(!mentions.is_empty());
    }

    #[test]
    fn all_table_mentions_combines() {
        let t = health_table();
        let singles = crate::extract::single_cell_mentions(&t, 0).len();
        let all = all_table_mentions(&[t], &VirtualCellConfig::default());
        assert!(all.len() > singles);
        assert!(all.iter().take(singles).all(|m| !m.is_aggregate()));
    }
}

briq_json::json_struct!(VirtualCellConfig {
    sums,
    differences,
    percentages,
    change_ratios,
    extended,
    max_line_cells,
    min_numeric_fraction,
});
