//! Table statistics (rows, columns, single cells, virtual cells) — the
//! quantities reported per domain in Table IX of the paper.

use crate::model::Table;
use crate::virtual_cells::{virtual_cells, VirtualCellConfig};

/// Statistics of one table (or averages over many).
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct TableStats {
    /// Data rows.
    pub rows: f64,
    /// Data columns.
    pub columns: f64,
    /// Single-cell quantity mentions.
    pub single_cells: f64,
    /// Virtual-cell quantity mentions.
    pub virtual_cells: f64,
}

/// Compute statistics for one table.
pub fn table_stats(table: &Table, cfg: &VirtualCellConfig) -> TableStats {
    TableStats {
        rows: table.data_rows().len() as f64,
        columns: table.data_cols().len() as f64,
        single_cells: table.quantity_count() as f64,
        virtual_cells: virtual_cells(table, 0, cfg).len() as f64,
    }
}

/// Average statistics over many tables (Table IX reports per-domain
/// averages).
pub fn average_stats<'a>(
    tables: impl IntoIterator<Item = &'a Table>,
    cfg: &VirtualCellConfig,
) -> TableStats {
    let mut acc = TableStats::default();
    let mut n = 0usize;
    for t in tables {
        let s = table_stats(t, cfg);
        acc.rows += s.rows;
        acc.columns += s.columns;
        acc.single_cells += s.single_cells;
        acc.virtual_cells += s.virtual_cells;
        n += 1;
    }
    if n > 0 {
        let n = n as f64;
        acc.rows /= n;
        acc.columns /= n;
        acc.single_cells /= n;
        acc.virtual_cells /= n;
    }
    acc
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(grid: &[&[&str]]) -> Table {
        Table::from_grid(
            "",
            grid.iter()
                .map(|r| r.iter().map(|s| s.to_string()).collect())
                .collect(),
        )
    }

    #[test]
    fn stats_of_small_table() {
        let table = t(&[&["h", "a", "b"], &["x", "1", "2"], &["y", "3", "4"]]);
        let s = table_stats(&table, &VirtualCellConfig::default());
        assert_eq!(s.rows, 2.0);
        assert_eq!(s.columns, 2.0);
        assert_eq!(s.single_cells, 4.0);
        assert!(s.virtual_cells > 0.0);
    }

    #[test]
    fn averages() {
        let t1 = t(&[&["h", "a"], &["x", "1"], &["y", "2"]]);
        let t2 = t(&[
            &["h", "a", "b", "c"],
            &["x", "1", "2", "3"],
            &["y", "4", "5", "6"],
        ]);
        let avg = average_stats([&t1, &t2], &VirtualCellConfig::default());
        assert_eq!(avg.rows, 2.0);
        assert_eq!(avg.columns, 2.0); // (1 + 3) / 2
        assert_eq!(avg.single_cells, (2.0 + 6.0) / 2.0);
    }

    #[test]
    fn empty_input_gives_zero() {
        let avg = average_stats(std::iter::empty(), &VirtualCellConfig::default());
        assert_eq!(avg, TableStats::default());
    }

    #[test]
    fn zero_row_and_zero_col_tables_do_not_panic() {
        // Completely empty grid.
        let empty = Table::from_grid("", Vec::new());
        let s = table_stats(&empty, &VirtualCellConfig::default());
        assert_eq!(s, TableStats::default());
        // Rows exist but have no columns.
        let hollow = Table::from_grid("", vec![Vec::new(), Vec::new()]);
        let s = table_stats(&hollow, &VirtualCellConfig::default());
        assert_eq!(s.columns, 0.0);
        assert_eq!(s.single_cells, 0.0);
        // Header-only table: one row, no data rows.
        let header_only = Table::from_grid("", vec![vec!["a".to_string(), "b".to_string()]]);
        let s = table_stats(&header_only, &VirtualCellConfig::default());
        assert_eq!(s.virtual_cells, 0.0);
        // Averaging over degenerate tables stays finite.
        let avg = average_stats([&empty, &hollow], &VirtualCellConfig::default());
        assert!(avg.rows.is_finite() && avg.virtual_cells.is_finite());
    }
}

briq_json::json_struct!(TableStats {
    rows,
    columns,
    single_cells,
    virtual_cells
});
