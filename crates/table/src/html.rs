//! Minimal HTML parsing for DWTC-style pages.
//!
//! Web pages in the corpus consist of paragraphs (`<p>`, or bare text
//! blocks) and tables (`<table>` / `<tr>` / `<td>` / `<th>` /
//! `<caption>`). This parser extracts exactly that structure, decoding the
//! common entities; all other markup is stripped. It is intentionally
//! forgiving — ad-hoc web tables frequently have unclosed tags.

/// A raw table: caption plus a grid of cell strings (`true` marks header
/// cells, from `<th>`).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct RawTable {
    /// `<caption>` content, if any.
    pub caption: String,
    /// Cell text by row; rows may have differing lengths before padding.
    pub rows: Vec<Vec<String>>,
    /// Header flags parallel to `rows`.
    pub header_flags: Vec<Vec<bool>>,
}

/// A parsed page: the textual paragraphs and the raw tables, in document
/// order. `table_positions[i]` is the paragraph index *before* which table
/// `i` appeared (used by segmentation for proximity).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct RawPage {
    /// Paragraph texts in order.
    pub paragraphs: Vec<String>,
    /// Tables in order.
    pub tables: Vec<RawTable>,
    /// For each table, the number of paragraphs seen before it.
    pub table_positions: Vec<usize>,
}

/// Decode the common HTML entities.
pub fn decode_entities(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    let mut rest = s;
    while let Some(pos) = rest.find('&') {
        out.push_str(&rest[..pos]);
        rest = &rest[pos..];
        let semi = rest.find(';');
        match semi {
            Some(end) if end <= 10 => {
                let ent = &rest[1..end];
                let decoded = match ent {
                    "amp" => Some('&'),
                    "lt" => Some('<'),
                    "gt" => Some('>'),
                    "quot" => Some('"'),
                    "apos" => Some('\''),
                    "nbsp" => Some(' '),
                    "euro" => Some('€'),
                    "pound" => Some('£'),
                    "yen" => Some('¥'),
                    "plusmn" => Some('±'),
                    "ndash" => Some('–'),
                    "mdash" => Some('—'),
                    _ => ent
                        .strip_prefix('#')
                        .and_then(|n| {
                            if let Some(hex) = n.strip_prefix('x').or_else(|| n.strip_prefix('X')) {
                                u32::from_str_radix(hex, 16).ok()
                            } else {
                                n.parse::<u32>().ok()
                            }
                        })
                        .and_then(char::from_u32),
                };
                match decoded {
                    Some(c) => {
                        out.push(c);
                        rest = &rest[end + 1..];
                    }
                    None => {
                        out.push('&');
                        rest = &rest[1..];
                    }
                }
            }
            _ => {
                out.push('&');
                rest = &rest[1..];
            }
        }
    }
    out.push_str(rest);
    out
}

#[derive(Debug, PartialEq)]
enum Tag<'a> {
    Open(&'a str),
    Close(&'a str),
}

/// Iterate over tags and text chunks.
struct Lexer<'a> {
    src: &'a str,
    pos: usize,
}

enum Piece<'a> {
    Text(&'a str),
    Markup(Tag<'a>),
}

impl<'a> Lexer<'a> {
    fn next_piece(&mut self) -> Option<Piece<'a>> {
        // Iterative (comments `continue` the loop): a page made of millions
        // of consecutive comments must not grow the call stack.
        loop {
            if self.pos >= self.src.len() {
                return None;
            }
            let rest = &self.src[self.pos..];
            if let Some(stripped) = rest.strip_prefix('<') {
                // comments
                if let Some(after) = stripped.strip_prefix("!--") {
                    let end = after.find("-->").map(|i| i + 3).unwrap_or(after.len());
                    self.pos += 1 + 3 + end;
                    continue;
                }
                return match rest.find('>') {
                    Some(end) => {
                        let inner = &rest[1..end];
                        self.pos += end + 1;
                        let (is_close, name_part) = match inner.strip_prefix('/') {
                            Some(p) => (true, p),
                            None => (false, inner),
                        };
                        let name_end = name_part
                            .find(|c: char| c.is_whitespace() || c == '/')
                            .unwrap_or(name_part.len());
                        let name = &name_part[..name_end];
                        Some(Piece::Markup(if is_close {
                            Tag::Close(name)
                        } else {
                            Tag::Open(name)
                        }))
                    }
                    None => {
                        // stray '<': treat as text
                        self.pos = self.src.len();
                        Some(Piece::Text(rest))
                    }
                };
            }
            let end = rest.find('<').unwrap_or(rest.len());
            self.pos += end;
            return Some(Piece::Text(&rest[..end]));
        }
    }
}

fn eq_tag(name: &str, want: &str) -> bool {
    name.eq_ignore_ascii_case(want)
}

/// Parse an HTML fragment into paragraphs and tables.
pub fn parse_page(html: &str) -> RawPage {
    let mut page = RawPage::default();
    let mut lexer = Lexer { src: html, pos: 0 };

    let mut para_buf = String::new();
    let mut in_table = false;
    let mut in_caption = false;
    let mut in_cell = false;
    let mut cur_table = RawTable::default();
    let mut cur_row: Vec<String> = Vec::new();
    let mut cur_flags: Vec<bool> = Vec::new();
    let mut cell_buf = String::new();
    let mut cell_is_header = false;
    let mut skip_depth = 0usize; // inside <script>/<style>

    let flush_para = |buf: &mut String, page: &mut RawPage| {
        let text = decode_entities(buf).trim().to_string();
        buf.clear();
        if !text.is_empty() {
            page.paragraphs.push(collapse_ws(&text));
        }
    };

    while let Some(piece) = lexer.next_piece() {
        match piece {
            Piece::Text(t) => {
                if skip_depth > 0 {
                    continue;
                }
                if in_caption {
                    cur_table.caption.push_str(t);
                } else if in_cell {
                    cell_buf.push_str(t);
                } else if !in_table {
                    para_buf.push_str(t);
                }
            }
            Piece::Markup(tag) => match tag {
                Tag::Open(name) if eq_tag(name, "script") || eq_tag(name, "style") => {
                    skip_depth += 1;
                }
                Tag::Close(name) if eq_tag(name, "script") || eq_tag(name, "style") => {
                    skip_depth = skip_depth.saturating_sub(1);
                }
                _ if skip_depth > 0 => {}
                Tag::Open(name) if eq_tag(name, "table") => {
                    flush_para(&mut para_buf, &mut page);
                    in_table = true;
                    cur_table = RawTable::default();
                    page.table_positions.push(page.paragraphs.len());
                }
                Tag::Close(name) if eq_tag(name, "table") => {
                    if in_cell {
                        finish_cell(&mut cell_buf, cell_is_header, &mut cur_row, &mut cur_flags);
                        in_cell = false;
                    }
                    if !cur_row.is_empty() {
                        cur_table.rows.push(std::mem::take(&mut cur_row));
                        cur_table.header_flags.push(std::mem::take(&mut cur_flags));
                    }
                    cur_table.caption = collapse_ws(decode_entities(&cur_table.caption).trim());
                    if !cur_table.rows.is_empty() {
                        page.tables.push(std::mem::take(&mut cur_table));
                    } else {
                        page.table_positions.pop();
                    }
                    in_table = false;
                    in_caption = false;
                }
                Tag::Open(name) if eq_tag(name, "caption") && in_table => {
                    in_caption = true;
                }
                Tag::Close(name) if eq_tag(name, "caption") => {
                    in_caption = false;
                }
                Tag::Open(name) if eq_tag(name, "tr") && in_table => {
                    if in_cell {
                        finish_cell(&mut cell_buf, cell_is_header, &mut cur_row, &mut cur_flags);
                        in_cell = false;
                    }
                    if !cur_row.is_empty() {
                        cur_table.rows.push(std::mem::take(&mut cur_row));
                        cur_table.header_flags.push(std::mem::take(&mut cur_flags));
                    }
                }
                Tag::Close(name) if eq_tag(name, "tr") && in_table => {
                    if in_cell {
                        finish_cell(&mut cell_buf, cell_is_header, &mut cur_row, &mut cur_flags);
                        in_cell = false;
                    }
                    if !cur_row.is_empty() {
                        cur_table.rows.push(std::mem::take(&mut cur_row));
                        cur_table.header_flags.push(std::mem::take(&mut cur_flags));
                    }
                }
                Tag::Open(name) if (eq_tag(name, "td") || eq_tag(name, "th")) && in_table => {
                    if in_cell {
                        finish_cell(&mut cell_buf, cell_is_header, &mut cur_row, &mut cur_flags);
                    }
                    in_cell = true;
                    cell_is_header = eq_tag(name, "th");
                }
                Tag::Close(name) if (eq_tag(name, "td") || eq_tag(name, "th")) && in_cell => {
                    finish_cell(&mut cell_buf, cell_is_header, &mut cur_row, &mut cur_flags);
                    in_cell = false;
                }
                Tag::Open(name)
                    if !in_table
                        && (eq_tag(name, "p")
                            || eq_tag(name, "br")
                            || eq_tag(name, "div")
                            || eq_tag(name, "h1")
                            || eq_tag(name, "h2")
                            || eq_tag(name, "h3")) =>
                {
                    flush_para(&mut para_buf, &mut page);
                }
                Tag::Close(name)
                    if !in_table
                        && (eq_tag(name, "p")
                            || eq_tag(name, "div")
                            || eq_tag(name, "h1")
                            || eq_tag(name, "h2")
                            || eq_tag(name, "h3")) =>
                {
                    flush_para(&mut para_buf, &mut page);
                }
                _ => {} // unknown inline tags: ignored (b, i, span, a, …)
            },
        }
    }
    flush_para(&mut para_buf, &mut page);
    page
}

fn finish_cell(buf: &mut String, header: bool, row: &mut Vec<String>, flags: &mut Vec<bool>) {
    let text = collapse_ws(decode_entities(buf).trim());
    buf.clear();
    row.push(text);
    flags.push(header);
}

fn collapse_ws(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    let mut last_ws = false;
    for c in s.chars() {
        if c.is_whitespace() {
            if !last_ws && !out.is_empty() {
                out.push(' ');
            }
            last_ws = true;
        } else {
            out.push(c);
            last_ws = false;
        }
    }
    while out.ends_with(' ') {
        out.pop();
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn simple_page() {
        let page = parse_page(
            "<p>Some text about 42 things.</p>\
             <table><tr><th>a</th><th>b</th></tr><tr><td>1</td><td>2</td></tr></table>\
             <p>After the table.</p>",
        );
        assert_eq!(
            page.paragraphs,
            vec!["Some text about 42 things.", "After the table."]
        );
        assert_eq!(page.tables.len(), 1);
        assert_eq!(page.tables[0].rows, vec![vec!["a", "b"], vec!["1", "2"]]);
        assert_eq!(page.tables[0].header_flags[0], vec![true, true]);
        assert_eq!(page.tables[0].header_flags[1], vec![false, false]);
        assert_eq!(page.table_positions, vec![1]);
    }

    #[test]
    fn caption_extracted() {
        let page = parse_page(
            "<table><caption>Income gains (in Mio)</caption><tr><td>890</td></tr></table>",
        );
        assert_eq!(page.tables[0].caption, "Income gains (in Mio)");
    }

    #[test]
    fn entities_decoded() {
        let page = parse_page("<p>costs 37&nbsp;&euro; &amp; more</p>");
        assert_eq!(page.paragraphs[0], "costs 37 € & more");
        assert_eq!(decode_entities("&#8364;"), "€");
        assert_eq!(decode_entities("&#x20AC;"), "€");
        assert_eq!(decode_entities("&bogus; &"), "&bogus; &");
    }

    #[test]
    fn unclosed_cells_tolerated() {
        let page = parse_page("<table><tr><td>1<td>2<tr><td>3<td>4</table>");
        assert_eq!(page.tables[0].rows, vec![vec!["1", "2"], vec!["3", "4"]]);
    }

    #[test]
    fn attributes_ignored() {
        let page = parse_page(r#"<table class="x"><tr><td colspan="2">v</td></tr></table>"#);
        assert_eq!(page.tables[0].rows, vec![vec!["v"]]);
    }

    #[test]
    fn inline_markup_stripped() {
        let page = parse_page("<p>The <b>net income</b> of <a href='#'>2013</a>.</p>");
        assert_eq!(page.paragraphs[0], "The net income of 2013.");
    }

    #[test]
    fn script_and_style_skipped() {
        let page = parse_page("<script>var x = '<p>no</p>';</script><p>yes</p><style>p{}</style>");
        assert_eq!(page.paragraphs, vec!["yes"]);
    }

    #[test]
    fn empty_tables_dropped() {
        let page = parse_page("<table></table><p>text</p>");
        assert!(page.tables.is_empty());
        assert!(page.table_positions.is_empty());
    }

    #[test]
    fn multiple_tables_positions() {
        let page = parse_page(
            "<p>one</p><table><tr><td>1</td></tr></table>\
             <p>two</p><p>three</p><table><tr><td>2</td></tr></table>",
        );
        assert_eq!(page.table_positions, vec![1, 3]);
    }

    #[test]
    fn comments_skipped() {
        let page = parse_page("<p>a<!-- hidden <table> -->b</p>");
        assert_eq!(page.paragraphs, vec!["ab"]);
    }

    #[test]
    fn comment_flood_does_not_overflow_stack() {
        let mut html = String::from("<p>a</p>");
        html.push_str(&"<!--x-->".repeat(200_000));
        html.push_str("<p>b</p>");
        let page = parse_page(&html);
        assert_eq!(page.paragraphs, vec!["a", "b"]);
    }

    #[test]
    fn unterminated_comment_swallows_tail() {
        let page = parse_page("<p>a</p><!-- open comment <p>never</p>");
        assert_eq!(page.paragraphs, vec!["a"]);
    }

    #[test]
    fn whitespace_collapsed() {
        let page = parse_page("<p>a\n   b\t c</p>");
        assert_eq!(page.paragraphs, vec!["a b c"]);
    }
}
