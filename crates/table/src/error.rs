//! Error taxonomy for the table substrate.

use std::fmt;

/// Errors and budget violations from table processing.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TableError {
    /// Virtual-cell generation for a table hit the per-table cap and the
    /// candidate list was truncated.
    VirtualCellBudgetExceeded {
        /// Index of the table within its document.
        table: usize,
        /// The cap that was hit.
        max_cells: usize,
    },
    /// A grid had no data rows or no data columns after header detection,
    /// so statistics and aggregates over it are undefined.
    DegenerateTable {
        /// Index of the table within its document.
        table: usize,
    },
}

impl fmt::Display for TableError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TableError::VirtualCellBudgetExceeded { table, max_cells } => {
                write!(f, "table {table}: virtual-cell budget of {max_cells} exceeded, candidates truncated")
            }
            TableError::DegenerateTable { table } => {
                write!(f, "table {table}: no data rows or columns")
            }
        }
    }
}

impl std::error::Error for TableError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        assert_eq!(
            TableError::VirtualCellBudgetExceeded {
                table: 2,
                max_cells: 100
            }
            .to_string(),
            "table 2: virtual-cell budget of 100 exceeded, candidates truncated"
        );
        assert_eq!(
            TableError::DegenerateTable { table: 0 }.to_string(),
            "table 0: no data rows or columns"
        );
    }
}
