//! Page segmentation into coherent documents (§III).
//!
//! A *document* is a paragraph together with all related tables from the
//! same page. Relatedness is token-overlap similarity between the
//! paragraph and the entire table content (headers and caption included),
//! with a proximity bonus: the table immediately following a paragraph is
//! related even with modest overlap. A paragraph may relate to several
//! tables and a table to several paragraphs.

use std::collections::BTreeSet;

use crate::html::RawPage;
use crate::model::{Document, Table};

/// Configuration for page segmentation.
#[derive(Debug, Clone)]
pub struct SegmentConfig {
    /// Minimum token-overlap similarity for a paragraph–table pair.
    pub similarity_threshold: f64,
    /// Similarity for the table directly adjacent to the paragraph
    /// (positional prior — adjacent tables are usually discussed).
    pub adjacent_threshold: f64,
    /// Paragraphs shorter than this many tokens are skipped (boilerplate).
    pub min_paragraph_tokens: usize,
}

impl Default for SegmentConfig {
    fn default() -> Self {
        SegmentConfig {
            similarity_threshold: 0.10,
            adjacent_threshold: 0.02,
            min_paragraph_tokens: 5,
        }
    }
}

/// Lowercased, lightly stemmed word-token set of a text.
fn token_set(text: &str) -> BTreeSet<String> {
    briq_text::token::tokenize(text)
        .into_iter()
        .filter(|t| t.is_wordlike() || t.kind == briq_text::token::TokenKind::Number)
        .map(|t| briq_text::token::light_stem(&t.text))
        .collect()
}

/// Overlap coefficient |A ∩ B| / min(|A|, |B|).
pub fn overlap_coefficient(a: &BTreeSet<String>, b: &BTreeSet<String>) -> f64 {
    if a.is_empty() || b.is_empty() {
        return 0.0;
    }
    let inter = a.intersection(b).count();
    inter as f64 / a.len().min(b.len()) as f64
}

/// Segment a parsed page into documents.
///
/// Returns one document per paragraph that has at least one related table;
/// document ids are assigned sequentially starting from `first_id`.
pub fn segment_page(page: &RawPage, cfg: &SegmentConfig, first_id: usize) -> Vec<Document> {
    let tables: Vec<Table> = page.tables.iter().map(Table::from_raw).collect();
    let table_sets: Vec<BTreeSet<String>> =
        tables.iter().map(|t| token_set(&t.full_text())).collect();

    let mut docs = Vec::new();
    let mut next_id = first_id;
    for (pi, para) in page.paragraphs.iter().enumerate() {
        let pset = token_set(para);
        if pset.len() < cfg.min_paragraph_tokens {
            continue;
        }
        let mut related = Vec::new();
        for (ti, tset) in table_sets.iter().enumerate() {
            let sim = overlap_coefficient(&pset, tset);
            // Is this table adjacent to the paragraph? table_positions[ti]
            // counts the paragraphs before the table.
            let adjacent = page
                .table_positions
                .get(ti)
                .is_some_and(|&pos| pos == pi + 1 || pos == pi);
            let threshold = if adjacent {
                cfg.adjacent_threshold
            } else {
                cfg.similarity_threshold
            };
            if sim >= threshold {
                related.push(tables[ti].clone());
            }
        }
        if !related.is_empty() {
            docs.push(Document::new(next_id, para.clone(), related));
            next_id += 1;
        }
    }
    docs
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::html::parse_page;

    fn page() -> RawPage {
        parse_page(
            "<p>A total of 123 patients reported side effects such as rash and depression.</p>\
             <table><tr><th>side effects</th><th>total</th></tr>\
             <tr><td>Rash</td><td>35</td></tr><tr><td>Depression</td><td>38</td></tr></table>\
             <p>The weather tomorrow will be sunny with light winds from the north.</p>\
             <p>Car prices and ratings differ between the tested models significantly this year.</p>\
             <table><tr><th>model</th><th>price</th><th>rating</th></tr>\
             <tr><td>Focus</td><td>34900</td><td>1.33</td></tr></table>",
        )
    }

    #[test]
    fn related_paragraphs_get_documents() {
        let docs = segment_page(&page(), &SegmentConfig::default(), 0);
        // Paragraph 1 relates to table 1 (overlap: side, effects, rash,
        // depression); paragraph 3 relates to table 2 via adjacency.
        assert_eq!(docs.len(), 2);
        assert!(docs[0].text.contains("123 patients"));
        assert_eq!(docs[0].tables.len(), 1);
        assert!(docs[1].text.contains("Car prices"));
    }

    #[test]
    fn unrelated_paragraph_skipped() {
        let docs = segment_page(&page(), &SegmentConfig::default(), 0);
        assert!(!docs.iter().any(|d| d.text.contains("weather")));
    }

    #[test]
    fn ids_sequential_from_first() {
        let docs = segment_page(&page(), &SegmentConfig::default(), 10);
        let ids: Vec<usize> = docs.iter().map(|d| d.id).collect();
        assert_eq!(ids, vec![10, 11]);
    }

    #[test]
    fn short_paragraphs_skipped() {
        let page = parse_page("<p>Too short.</p><table><tr><td>1</td><td>2</td></tr></table>");
        let docs = segment_page(&page, &SegmentConfig::default(), 0);
        assert!(docs.is_empty());
    }

    #[test]
    fn paragraph_can_relate_to_multiple_tables() {
        let page = parse_page(
            "<p>Sales rose in transportation systems and automation control segments; \
             segment profit and segment margin grew strongly across both business units.</p>\
             <table><caption>Transportation Systems</caption>\
             <tr><th>metric</th><th>value</th></tr><tr><td>Sales</td><td>900</td></tr>\
             <tr><td>Segment Profit</td><td>114</td></tr></table>\
             <table><caption>Automation Control</caption>\
             <tr><th>metric</th><th>value</th></tr><tr><td>Sales</td><td>3962</td></tr>\
             <tr><td>Segment Margin</td><td>13.3%</td></tr></table>",
        );
        let docs = segment_page(&page, &SegmentConfig::default(), 0);
        assert_eq!(docs.len(), 1);
        assert_eq!(docs[0].tables.len(), 2);
    }

    #[test]
    fn overlap_coefficient_properties() {
        let a = token_set("alpha beta gamma");
        let b = token_set("beta gamma delta epsilon");
        let c = overlap_coefficient(&a, &b);
        assert!((c - 2.0 / 3.0).abs() < 1e-12);
        assert_eq!(overlap_coefficient(&a, &a), 1.0);
        assert_eq!(overlap_coefficient(&a, &BTreeSet::new()), 0.0);
    }
}
