//! Single-cell table-mention extraction.
//!
//! Produces one [`TableMention`] per data cell holding a parsed quantity —
//! the "explicit single-cell mentions" of §II-A (at most `r · c` of them).

use crate::model::{Table, TableMention, TableMentionKind};

/// Extract single-cell mentions from `table` (index `table_idx` within its
/// document).
pub fn single_cell_mentions(table: &Table, table_idx: usize) -> Vec<TableMention> {
    table
        .quantities()
        .map(|(&(r, c), q)| TableMention {
            table: table_idx,
            kind: TableMentionKind::SingleCell,
            cells: vec![(r, c)],
            value: q.value,
            unnormalized: q.unnormalized,
            raw: table.cells[r][c].clone(),
            unit: q.unit,
            precision: q.precision,
            orientation: None,
        })
        .collect()
}

/// Extract single-cell mentions for every table in a document.
pub fn document_single_cells(tables: &[Table]) -> Vec<TableMention> {
    tables
        .iter()
        .enumerate()
        .flat_map(|(i, t)| single_cell_mentions(t, i))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use briq_text::units::{Currency, Unit};

    fn table() -> Table {
        let grid = vec![
            vec!["item".to_string(), "price ($)".to_string()],
            vec!["widget".to_string(), "35".to_string()],
            vec!["gadget".to_string(), "38".to_string()],
        ];
        Table::from_grid("", grid)
    }

    #[test]
    fn one_mention_per_numeric_cell() {
        let ms = single_cell_mentions(&table(), 0);
        assert_eq!(ms.len(), 2);
        assert!(ms.iter().all(|m| m.kind == TableMentionKind::SingleCell));
        assert!(ms.iter().all(|m| m.cells.len() == 1));
        let values: Vec<f64> = ms.iter().map(|m| m.value).collect();
        assert_eq!(values, vec![35.0, 38.0]);
    }

    #[test]
    fn unit_inherited_from_header() {
        let ms = single_cell_mentions(&table(), 0);
        assert!(ms.iter().all(|m| m.unit == Unit::Currency(Currency::Usd)));
    }

    #[test]
    fn surface_form_kept() {
        let ms = single_cell_mentions(&table(), 0);
        assert_eq!(ms[0].raw, "35");
    }

    #[test]
    fn document_level_extraction_indexes_tables() {
        let tables = vec![table(), table()];
        let ms = document_single_cells(&tables);
        assert_eq!(ms.len(), 4);
        assert_eq!(ms[0].table, 0);
        assert_eq!(ms[2].table, 1);
    }

    #[test]
    fn empty_table_yields_nothing() {
        let t = Table::from_grid("", vec![vec!["a".to_string(), "b".to_string()]]);
        assert!(single_cell_mentions(&t, 0).is_empty());
    }
}
