//! Property-based tests for the table substrate.

use briq_table::html::{decode_entities, parse_page};
use briq_table::virtual_cells::{virtual_cells, VirtualCellConfig};
use briq_table::Table;
use proptest::prelude::*;

/// Strategy: a small grid of numeric cell strings with a header row/col.
fn grid_strategy() -> impl Strategy<Value = Vec<Vec<String>>> {
    (2usize..6, 2usize..5).prop_flat_map(|(rows, cols)| {
        proptest::collection::vec(proptest::collection::vec(1u32..100_000, cols - 1), rows - 1)
            .prop_map(move |data| {
                let mut grid = Vec::with_capacity(rows);
                let mut header = vec![String::new()];
                header.extend((1..cols).map(|c| format!("metric{c}")));
                grid.push(header);
                for (r, row) in data.iter().enumerate() {
                    let mut cells = vec![format!("entity{r}")];
                    cells.extend(row.iter().map(|v| v.to_string()));
                    grid.push(cells);
                }
                grid
            })
    })
}

proptest! {
    /// Every numeric data cell parses to its value; headers are detected.
    #[test]
    fn grid_parses_fully(grid in grid_strategy()) {
        let rows = grid.len();
        let cols = grid[0].len();
        let t = Table::from_grid("", grid.clone());
        prop_assert_eq!(t.header_rows, 1);
        prop_assert_eq!(t.header_cols, 1);
        prop_assert_eq!(t.quantity_count(), (rows - 1) * (cols - 1));
        for (r, row) in grid.iter().enumerate().take(rows).skip(1) {
            for (c, cell) in row.iter().enumerate().take(cols).skip(1) {
                let q = t.quantity(r, c).expect("data cell parses");
                let expect: f64 = cell.parse().unwrap();
                prop_assert_eq!(q.value, expect);
            }
        }
    }

    /// Sum virtual cells equal the actual line sums; member cells are in
    /// range and belong to the stated line.
    #[test]
    fn sums_are_correct(grid in grid_strategy()) {
        let t = Table::from_grid("", grid);
        let cfg = VirtualCellConfig {
            differences: false,
            percentages: false,
            change_ratios: false,
            ..Default::default()
        };
        for vc in virtual_cells(&t, 0, &cfg) {
            let member_sum: f64 =
                vc.cells.iter().map(|&(r, c)| t.quantity(r, c).unwrap().value).sum();
            prop_assert!((vc.value - member_sum).abs() < 1e-9);
            match vc.orientation.unwrap() {
                briq_table::Orientation::Row(r) => {
                    prop_assert!(vc.cells.iter().all(|&(rr, _)| rr == r));
                }
                briq_table::Orientation::Column(c) => {
                    prop_assert!(vc.cells.iter().all(|&(_, cc)| cc == c));
                }
            }
        }
    }

    /// Pair aggregates always reference exactly two distinct cells of one
    /// line, and their values satisfy the defining formulas.
    #[test]
    fn pair_aggregates_satisfy_formulas(grid in grid_strategy()) {
        use briq_text::cues::AggregationKind;
        let t = Table::from_grid("", grid);
        let cfg = VirtualCellConfig { sums: false, ..Default::default() };
        for vc in virtual_cells(&t, 0, &cfg) {
            prop_assert_eq!(vc.cells.len(), 2);
            let a = t.quantity(vc.cells[0].0, vc.cells[0].1).unwrap().value;
            let b = t.quantity(vc.cells[1].0, vc.cells[1].1).unwrap().value;
            match vc.aggregation().unwrap() {
                AggregationKind::Difference => {
                    prop_assert!((vc.value - (a - b).abs()).abs() < 1e-9);
                }
                AggregationKind::Percentage => {
                    let fwd = a / b * 100.0;
                    let rev = b / a * 100.0;
                    prop_assert!(
                        (vc.value - fwd).abs() < 1e-9 || (vc.value - rev).abs() < 1e-9
                    );
                }
                AggregationKind::ChangeRatio => {
                    let fwd = ((a - b) / a * 100.0).abs();
                    let rev = ((b - a) / b * 100.0).abs();
                    prop_assert!(
                        (vc.value - fwd).abs() < 1e-6 || (vc.value - rev).abs() < 1e-6
                    );
                }
                other => prop_assert!(false, "unexpected kind {other:?}"),
            }
        }
    }

    /// HTML round trip: grid → html → parse → identical cells.
    #[test]
    fn html_roundtrip(grid in grid_strategy()) {
        let t = Table::from_grid("caption", grid);
        let mut html = String::from("<table><caption>caption</caption>");
        for row in &t.cells {
            html.push_str("<tr>");
            for cell in row {
                html.push_str("<td>");
                html.push_str(cell);
                html.push_str("</td>");
            }
            html.push_str("</tr>");
        }
        html.push_str("</table>");
        let page = parse_page(&html);
        prop_assert_eq!(page.tables.len(), 1);
        let re = Table::from_raw(&page.tables[0]);
        prop_assert_eq!(&re.cells, &t.cells);
        prop_assert_eq!(re.quantity_count(), t.quantity_count());
    }

    /// Entity decoding is total and idempotent on entity-free strings.
    #[test]
    fn entity_decoding_total(s in "[a-zA-Z0-9 .,]*") {
        let decoded = decode_entities(&s);
        prop_assert_eq!(decoded.clone(), s);
        prop_assert_eq!(decode_entities(&decoded.clone()), decoded);
    }

    /// parse_page never panics on arbitrary input.
    #[test]
    fn parser_is_total(s in "\\PC{0,300}") {
        let _ = parse_page(&s);
    }
}
