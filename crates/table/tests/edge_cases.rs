//! Edge-case tests for the table substrate: messy HTML, degenerate
//! tables, header-detection corners, segmentation behaviour.

use briq_table::html::parse_page;
use briq_table::segment::{segment_page, SegmentConfig};
use briq_table::virtual_cells::{all_table_mentions, virtual_cells, VirtualCellConfig};
use briq_table::{Table, TableMentionKind};

fn grid(rows: &[&[&str]]) -> Vec<Vec<String>> {
    rows.iter()
        .map(|r| r.iter().map(|s| s.to_string()).collect())
        .collect()
}

mod html {
    use super::*;

    #[test]
    fn deeply_nested_inline_markup() {
        let page = parse_page(
            "<p>The <b><i>net <u>income</u></i></b> was <span class=\"x\">42</span>.</p>",
        );
        assert_eq!(page.paragraphs, vec!["The net income was 42."]);
    }

    #[test]
    fn table_without_any_rows_dropped() {
        let page = parse_page("<table><caption>empty</caption></table><p>some text here</p>");
        assert!(page.tables.is_empty());
    }

    #[test]
    fn nested_table_tags_tolerated() {
        // malformed nesting: inner <table> inside a cell is flattened
        let page = parse_page("<table><tr><td>1</td><td>2</td></tr></table>");
        assert_eq!(page.tables.len(), 1);
    }

    #[test]
    fn mixed_th_td_rows() {
        let page = parse_page(
            "<table><tr><th>h1</th><td>v1</td></tr><tr><td>a</td><td>1</td></tr></table>",
        );
        assert_eq!(page.tables[0].header_flags[0], vec![true, false]);
    }

    #[test]
    fn crlf_and_tabs_collapse() {
        let page = parse_page("<p>a\r\n\tb</p>");
        assert_eq!(page.paragraphs, vec!["a b"]);
    }

    #[test]
    fn numeric_entities_in_cells() {
        let page = parse_page("<table><tr><td>37&#8364;</td></tr></table>");
        assert_eq!(page.tables[0].rows[0][0], "37€");
    }

    #[test]
    fn text_after_last_table() {
        let page = parse_page("<table><tr><td>1</td></tr></table>trailing words here");
        assert_eq!(page.paragraphs, vec!["trailing words here"]);
    }
}

mod model {
    use super::*;

    #[test]
    fn single_cell_table() {
        let t = Table::from_grid("", grid(&[&["42"]]));
        assert_eq!(t.n_rows, 1);
        assert_eq!(t.n_cols, 1);
        assert_eq!(t.header_rows, 0);
        assert_eq!(t.quantity_count(), 1);
        assert!(virtual_cells(&t, 0, &VirtualCellConfig::default()).is_empty());
    }

    #[test]
    fn single_row_table_has_row_aggregates_only() {
        let t = Table::from_grid("", grid(&[&["1", "2", "3"]]));
        let vc = virtual_cells(&t, 0, &VirtualCellConfig::default());
        assert!(vc
            .iter()
            .all(|m| matches!(m.orientation, Some(briq_table::Orientation::Row(0)))));
        assert!(vc.iter().any(|m| m.kind
            == TableMentionKind::Aggregate(briq_text::AggregationKind::Sum)
            && m.value == 6.0));
    }

    #[test]
    fn all_text_table_has_no_mentions() {
        let t = Table::from_grid("", grid(&[&["a", "b"], &["c", "d"]]));
        assert_eq!(t.quantity_count(), 0);
        assert!(all_table_mentions(&[t], &VirtualCellConfig::default()).is_empty());
    }

    #[test]
    fn sparse_table_partial_parsing() {
        let t = Table::from_grid(
            "",
            grid(&[&["metric", "a", "b"], &["x", "1", "--"], &["y", "", "4"]]),
        );
        assert_eq!(t.quantity_count(), 2);
        assert!(t.quantity(1, 2).is_none());
        assert!(t.quantity(2, 1).is_none());
    }

    #[test]
    fn numeric_headers_not_misdetected() {
        // first row all numeric → no header row
        let t = Table::from_grid("", grid(&[&["1", "2"], &["3", "4"]]));
        assert_eq!(t.header_rows, 0);
        assert_eq!(t.header_cols, 0);
    }

    #[test]
    fn percent_column_kept_out_of_sums() {
        let t = Table::from_grid(
            "",
            grid(&[
                &["metric", "value", "% Change"],
                &["Sales", "900", "5%"],
                &["Profit", "114", "11%"],
            ]),
        );
        let vc = virtual_cells(&t, 0, &VirtualCellConfig::default());
        // no row sums: value column and % column have incompatible units
        let bad_sum = vc.iter().any(|m| {
            m.kind == TableMentionKind::Aggregate(briq_text::AggregationKind::Sum)
                && matches!(m.orientation, Some(briq_table::Orientation::Row(_)))
        });
        assert!(!bad_sum, "{vc:?}");
    }

    #[test]
    fn row_and_col_text_with_empty_cells() {
        let t = Table::from_grid("", grid(&[&["a", ""], &["", "4"]]));
        assert_eq!(t.row_text(0), "a ");
        assert_eq!(t.col_text(1), " 4");
    }
}

mod segmentation {
    use super::*;

    #[test]
    fn page_without_tables_yields_no_documents() {
        let page = parse_page("<p>a long paragraph with many interesting words inside it</p>");
        assert!(segment_page(&page, &SegmentConfig::default(), 0).is_empty());
    }

    #[test]
    fn page_without_text_yields_no_documents() {
        let page = parse_page("<table><tr><td>1</td><td>2</td></tr></table>");
        assert!(segment_page(&page, &SegmentConfig::default(), 0).is_empty());
    }

    #[test]
    fn table_shared_between_paragraphs() {
        let html = "<p>The sales figures for widgets and gadgets rose sharply this year.</p>\
             <table><tr><th>item</th><th>sales</th></tr>\
             <tr><td>widgets</td><td>500</td></tr><tr><td>gadgets</td><td>700</td></tr></table>\
             <p>Widgets outsold gadgets in every region according to the sales table.</p>";
        let page = parse_page(html);
        let docs = segment_page(&page, &SegmentConfig::default(), 0);
        assert_eq!(docs.len(), 2, "both paragraphs relate to the table");
        assert_eq!(docs[0].tables.len(), 1);
        assert_eq!(docs[1].tables.len(), 1);
    }

    #[test]
    fn threshold_controls_relatedness() {
        let html = "<p>completely unrelated prose about gardening and weather patterns</p>\
             <table><tr><th>item</th><th>sales</th></tr><tr><td>widgets</td><td>500</td></tr></table>";
        let page = parse_page(html);
        let strict = SegmentConfig {
            similarity_threshold: 0.9,
            adjacent_threshold: 0.9,
            ..Default::default()
        };
        assert!(segment_page(&page, &strict, 0).is_empty());
        let lax = SegmentConfig {
            similarity_threshold: 0.0,
            adjacent_threshold: 0.0,
            ..Default::default()
        };
        assert_eq!(segment_page(&page, &lax, 0).len(), 1);
    }
}
