//! A miniature quantity knowledge base (QKB).
//!
//! The paper considered a baseline derived from earlier work on linking
//! quantities to a knowledge base (§VII-D): map both the text mention and
//! the table cell to the QKB — normalizing measure and unit — and align
//! when they link to the same entry with exactly matching values. It was
//! dismissed because (a) real QKBs are small and manually crafted, so
//! most units are simply not covered, and (b) exact matching fails on the
//! approximate mentions that dominate web text.
//!
//! This module reproduces that setting: a deliberately small registry of
//! canonical measures (the kind of coverage a hand-built QKB has), with
//! unit conversions to a canonical base.

use crate::quantity::QuantityMention;
use crate::units::{Currency, Measure, Unit};

/// Canonical dimensions the mini-QKB knows about.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Dimension {
    /// Monetary amounts; canonical unit: one unit of the stated currency.
    /// Currencies are *not* converted into each other (a QKB registers
    /// units, not exchange rates).
    Money(Currency),
    /// Dimensionless ratios; canonical unit: percent. Basis points
    /// normalize (60 bps → 0.6%).
    Ratio,
    /// Distances; canonical unit: kilometre.
    Distance,
    /// Masses; canonical unit: gram.
    Mass,
}

/// A canonicalized quantity: value expressed in the dimension's base unit.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CanonicalQuantity {
    /// Value in canonical units.
    pub value: f64,
    /// The dimension.
    pub dimension: Dimension,
}

/// Map a parsed quantity into the QKB, if its unit is registered.
///
/// Coverage is intentionally limited — that is the point of the baseline.
pub fn canonicalize(q: &QuantityMention) -> Option<CanonicalQuantity> {
    let (value, dimension) = match q.unit {
        Unit::Currency(c @ (Currency::Usd | Currency::Eur | Currency::Gbp)) => {
            (q.value, Dimension::Money(c))
        }
        // Other currencies are "not registered" in the mini-QKB.
        Unit::Currency(_) => return None,
        Unit::Percent => (q.value, Dimension::Ratio),
        Unit::BasisPoints => (q.value / 100.0, Dimension::Ratio),
        Unit::Measure(Measure::Km) => (q.value, Dimension::Distance),
        Unit::Measure(Measure::Mg) => (q.value / 1000.0, Dimension::Mass),
        // MPGe, g/km, kWh, plain counts: not in the registry.
        _ => return None,
    };
    Some(CanonicalQuantity { value, dimension })
}

/// QKB equality: same entry (dimension) and *exactly* matching values —
/// the paper notes "the test can work only if the values of the two
/// normalized mentions match exactly".
pub fn same_entry(a: &CanonicalQuantity, b: &CanonicalQuantity) -> bool {
    a.dimension == b.dimension && a.value == b.value
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cues::ApproxIndicator;

    fn q(value: f64, unit: Unit) -> QuantityMention {
        QuantityMention {
            raw: format!("{value}"),
            value,
            unnormalized: value,
            unit,
            precision: 0,
            approx: ApproxIndicator::None,
            start: 0,
            end: 1,
        }
    }

    #[test]
    fn registered_currencies_canonicalize() {
        let c = canonicalize(&q(37_000.0, Unit::Currency(Currency::Eur))).unwrap();
        assert_eq!(c.dimension, Dimension::Money(Currency::Eur));
        assert_eq!(c.value, 37_000.0);
    }

    #[test]
    fn unregistered_units_are_out_of_coverage() {
        assert!(canonicalize(&q(100.0, Unit::Currency(Currency::Inr))).is_none());
        assert!(canonicalize(&q(100.0, Unit::Measure(Measure::Mpge))).is_none());
        assert!(canonicalize(&q(100.0, Unit::None)).is_none());
    }

    #[test]
    fn basis_points_normalize_to_percent() {
        let bps = canonicalize(&q(60.0, Unit::BasisPoints)).unwrap();
        let pct = canonicalize(&q(0.6, Unit::Percent)).unwrap();
        assert!(same_entry(&bps, &pct));
    }

    #[test]
    fn milligrams_normalize_to_grams() {
        let mg = canonicalize(&q(500.0, Unit::Measure(Measure::Mg))).unwrap();
        assert_eq!(mg.dimension, Dimension::Mass);
        assert_eq!(mg.value, 0.5);
    }

    #[test]
    fn exact_match_is_strict() {
        let a = canonicalize(&q(37_000.0, Unit::Currency(Currency::Eur))).unwrap();
        let b = canonicalize(&q(36_900.0, Unit::Currency(Currency::Eur))).unwrap();
        assert!(!same_entry(&a, &b)); // '37K' vs 36900 — the QKB fails here
        let c = canonicalize(&q(37_000.0, Unit::Currency(Currency::Usd))).unwrap();
        assert!(!same_entry(&a, &c)); // currencies don't convert
    }
}

briq_json::json_enum!(Dimension { Money(Currency), Ratio, Distance, Mass });
briq_json::json_struct!(CanonicalQuantity { value, dimension });
