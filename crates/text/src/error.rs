//! Error taxonomy for text-side quantity extraction.

use std::fmt;

/// Why a string could not be interpreted as a quantity.
///
/// `NotANumeral` is the everyday case (the token simply is not a number);
/// the other variants are adversarial-input defenses: surface forms that
/// *look* numeric but would produce a non-finite or overflowed value.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TextError {
    /// The string is not a numeral at all.
    NotANumeral,
    /// The digits parse, but the value overflows `f64` to ±∞ (e.g. a
    /// 400-digit run or a `1e999`-shaped literal).
    NonFiniteNumber {
        /// The offending surface form (truncated for display).
        raw: String,
    },
    /// A spelled-out number overflows 64-bit arithmetic ("billion billion
    /// billion …").
    WordNumberOverflow,
}

impl fmt::Display for TextError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TextError::NotANumeral => write!(f, "not a numeral"),
            TextError::NonFiniteNumber { raw } => {
                write!(f, "numeral `{raw}` overflows to a non-finite value")
            }
            TextError::WordNumberOverflow => {
                write!(f, "spelled-out number overflows 64-bit arithmetic")
            }
        }
    }
}

impl std::error::Error for TextError {}

/// Clip `s` for embedding in an error message.
pub(crate) fn clip(s: &str) -> String {
    const MAX: usize = 32;
    if s.len() <= MAX {
        return s.to_string();
    }
    let mut end = MAX;
    while end > 0 && !s.is_char_boundary(end) {
        end -= 1;
    }
    format!("{}…", &s[..end])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        assert_eq!(TextError::NotANumeral.to_string(), "not a numeral");
        assert_eq!(
            TextError::NonFiniteNumber {
                raw: "9e999".into()
            }
            .to_string(),
            "numeral `9e999` overflows to a non-finite value"
        );
        assert_eq!(
            TextError::WordNumberOverflow.to_string(),
            "spelled-out number overflows 64-bit arithmetic"
        );
    }

    #[test]
    fn clip_respects_char_boundaries() {
        let long = "€".repeat(40);
        let c = clip(&long);
        assert!(c.ends_with('…'));
        assert!(c.chars().count() < 40);
        assert_eq!(clip("short"), "short");
    }
}
