//! # briq-text
//!
//! Text-processing substrate for BriQ ("Bridging Quantities in Tables and
//! Text", ICDE 2019). The paper's extraction stage (§III) and feature stage
//! (§IV-B) need a small but real NLP toolchain:
//!
//! * [`token`] — offset-preserving tokenizer,
//! * [`sentence`] — sentence and paragraph segmentation,
//! * [`numparse`] — numeric-literal parsing across the formats found in web
//!   tables (`3,263`, `2,29,866`, `0,877`, `(9.49)`, `37K`, `$3.26 billion`,
//!   word numbers like `twenty`),
//! * [`units`] — unit lexicon (currencies, percent, basis points, physical
//!   measures),
//! * [`quantity`] — quantity-mention extraction from running text and table
//!   cells, with the paper's exclusions (dates, headings, references,
//!   phone numbers, identifiers such as `Win10`),
//! * [`cues`] — cue-word dictionaries for aggregation functions and
//!   approximation modifiers (§V-A),
//! * [`pos`] / [`chunker`] — a rule/lexicon POS-lite tagger and noun-phrase
//!   chunker powering the phrase-overlap features f4/f5.
//!
//! Everything is deterministic and dependency-light; where the original
//! system used heavyweight NLP tooling, this crate substitutes transparent
//! rules applied uniformly to both sides of every comparison (see
//! DESIGN.md, substitution table).

#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

pub mod chunker;
pub mod cues;
pub mod error;
pub mod numparse;
pub mod pos;
pub mod qkb;
pub mod quantity;
pub mod sentence;
pub mod token;
pub mod units;

pub use cues::{AggregationKind, ApproxIndicator};
pub use error::TextError;
pub use quantity::{extract_quantities, parse_cell_quantity, QuantityMention};
pub use token::{tokenize, Token, TokenKind};
pub use units::Unit;
