//! Quantity-mention extraction from running text and table cells (§III).
//!
//! The extractor follows the paper's order of operations: complex
//! quantities (`5 ± 1 km per hour`) are identified first so they are not
//! split into several spurious matches; then simple quantities are
//! extracted with their units, scales and approximation modifiers; and
//! non-informative numbers (dates/times, headings like `Section 1.1`,
//! phone numbers, references like `[2]`, identifiers like `Win10`) are
//! eliminated (§II-A).

use crate::cues::{detect_approximation, ApproxIndicator};
use crate::numparse::{self, parse_numeral, parse_suffixed, parse_word_number};
use crate::token::{tokenize, Token, TokenKind};
use crate::units::{currency_from_symbol, unit_from_word, Unit};

/// A quantity mention extracted from text or from a table cell.
#[derive(Debug, Clone, PartialEq)]
pub struct QuantityMention {
    /// Surface form as it appears in the source (including unit tokens).
    pub raw: String,
    /// Fully normalized numeric value (scale words applied): `0.5 million`
    /// → `500000` (§III).
    pub value: f64,
    /// The literal numeral before scaling: `37` for `37K` (feature f7).
    pub unnormalized: f64,
    /// Detected unit.
    pub unit: Unit,
    /// Digits after the decimal point in the surface numeral (feature f10).
    pub precision: u8,
    /// Approximation modifier from the surrounding context (feature f11).
    pub approx: ApproxIndicator,
    /// Byte span in the source text.
    pub start: usize,
    /// End byte offset (exclusive).
    pub end: usize,
}

impl QuantityMention {
    /// Order of magnitude of the normalized value (feature f9).
    pub fn scale(&self) -> i32 {
        numparse::order_of_magnitude(self.value)
    }
}

const MONTHS: &[&str] = &[
    "january",
    "february",
    "march",
    "april",
    "may",
    "june",
    "july",
    "august",
    "september",
    "october",
    "november",
    "december",
    "jan",
    "feb",
    "mar",
    "apr",
    "jun",
    "jul",
    "aug",
    "sep",
    "sept",
    "oct",
    "nov",
    "dec",
];

const HEADING_WORDS: &[&str] = &[
    "section", "chapter", "figure", "table", "page", "item", "step", "fig", "eq", "equation",
];

fn is_month(w: &str) -> bool {
    MONTHS.contains(&w.to_lowercase().as_str())
}

fn is_year_value(v: f64) -> bool {
    v.fract() == 0.0 && (1900.0..=2100.0).contains(&v)
}

/// Extract all quantity mentions from a piece of running text.
///
/// Returns mentions sorted by start offset. Date/time, headings, phone
/// numbers, references and embedded identifiers are excluded per §II-A.
pub fn extract_quantities(text: &str) -> Vec<QuantityMention> {
    let tokens = tokenize(text);
    let n = tokens.len();
    let mut excluded = vec![false; n];

    mark_complex(&tokens, &mut excluded);
    mark_dates_times(&tokens, &mut excluded);
    mark_headings_refs_phones(&tokens, &mut excluded);

    let mut out = Vec::new();
    let mut i = 0;
    while i < n {
        if excluded[i] {
            i += 1;
            continue;
        }
        match tokens[i].kind {
            TokenKind::Number => {
                if let Some((m, consumed)) = extract_at(text, &tokens, i) {
                    out.push(m);
                    i += consumed;
                    continue;
                }
            }
            TokenKind::Alphanumeric => {
                // `37K` style only — other alphanumerics are identifiers.
                if let Some((v, mult, prec)) = parse_suffixed(&tokens[i].text) {
                    if let Some((m, consumed)) =
                        finish_mention(text, &tokens, i, v * mult, v, prec, i + 1)
                    {
                        out.push(m);
                        i += consumed;
                        continue;
                    }
                }
            }
            TokenKind::Word => {
                // Spelled-out numbers: "twenty pounds", "twenty five".
                if let Some((m, consumed)) = extract_word_number(text, &tokens, i) {
                    out.push(m);
                    i += consumed;
                    continue;
                }
            }
            _ => {}
        }
        i += 1;
    }
    out
}

/// Mark complex quantities (`5 ± 1`) so they are not split into matches.
fn mark_complex(tokens: &[Token], excluded: &mut [bool]) {
    for i in 0..tokens.len() {
        if tokens[i].text == "±"
            && i > 0
            && i + 1 < tokens.len()
            && tokens[i - 1].kind == TokenKind::Number
            && tokens[i + 1].kind == TokenKind::Number
        {
            excluded[i - 1] = true;
            excluded[i] = true;
            excluded[i + 1] = true;
        }
    }
}

/// Mark date/time expressions: `12:30`, `7th August 2001`, `October 2012`,
/// `In 2013`, `YTD 2005`, `Q3 FY 2012`.
fn mark_dates_times(tokens: &[Token], excluded: &mut [bool]) {
    let n = tokens.len();
    for i in 0..n {
        if tokens[i].kind != TokenKind::Number {
            continue;
        }
        // times: N ':' N
        if i + 2 < n && tokens[i + 1].text == ":" && tokens[i + 2].kind == TokenKind::Number {
            excluded[i] = true;
            excluded[i + 1] = true;
            excluded[i + 2] = true;
        }
        let v = match parse_numeral(&tokens[i].text) {
            Some(p) => p.value,
            None => continue,
        };
        if !is_year_value(v) {
            continue;
        }
        let prev = i.checked_sub(1).map(|j| tokens[j].lower());
        let prev2 = i.checked_sub(2).map(|j| tokens[j].lower());
        let next = tokens.get(i + 1).map(|t| t.lower());
        let year_context = prev.as_deref().is_some_and(|w| {
            is_month(w)
                || matches!(w, "in" | "of" | "since" | "until" | "during" | "year" | "fy" | "ytd")
        }) || prev2.as_deref().is_some_and(|w| matches!(w, "fy" | "ytd"))
            || next.as_deref().is_some_and(is_month)
            // sequences of years: "2013 2012 2011"
            || tokens.get(i + 1).is_some_and(|t| {
                t.kind == TokenKind::Number
                    && parse_numeral(&t.text).is_some_and(|p| is_year_value(p.value))
            })
            || i.checked_sub(1).is_some_and(|j| {
                tokens[j].kind == TokenKind::Number
                    && parse_numeral(&tokens[j].text).is_some_and(|p| is_year_value(p.value))
            });
        if year_context {
            excluded[i] = true;
        }
    }
}

/// Mark heading numbers (`Section 1.1`), references (`[2]`) and phone-like
/// digit chains (`555-12-34`).
fn mark_headings_refs_phones(tokens: &[Token], excluded: &mut [bool]) {
    let n = tokens.len();
    for i in 0..n {
        if tokens[i].kind != TokenKind::Number {
            continue;
        }
        // heading: preceded by a heading word
        if i > 0 && HEADING_WORDS.contains(&tokens[i - 1].lower().trim_end_matches('.')) {
            excluded[i] = true;
        }
        // reference: [ N ]
        if i > 0 && i + 1 < n && tokens[i - 1].text == "[" && tokens[i + 1].text == "]" {
            excluded[i] = true;
        }
        // phone-like: N - N - N chains
        if i + 4 < n
            && tokens[i + 1].text == "-"
            && tokens[i + 2].kind == TokenKind::Number
            && tokens[i + 3].text == "-"
            && tokens[i + 4].kind == TokenKind::Number
        {
            for k in 0..5 {
                excluded[i + k] = true;
            }
        }
    }
}

/// Try to extract a mention whose numeral token is at index `i`.
/// Returns the mention and the number of tokens consumed starting at the
/// *numeral* (prefix symbols are part of the span but were already passed).
fn extract_at(text: &str, tokens: &[Token], i: usize) -> Option<(QuantityMention, usize)> {
    let p = parse_numeral(&tokens[i].text)?;
    // Accounting negative written as `( 9.49 )` around the token:
    let (value, neg_wrap) = if i > 0
        && tokens[i - 1].text == "("
        && tokens.get(i + 1).map(|t| t.text.as_str()) == Some(")")
    {
        (-p.value.abs(), true)
    } else {
        (p.value, false)
    };
    let mut j = i + 1;
    if neg_wrap {
        j += 1; // skip ')'
    }
    finish_mention(text, tokens, i, value, value, p.precision, j)
}

/// Complete a mention starting at numeral index `i` with unscaled value
/// `value`; `j` is the next unconsumed token. Applies scale words, unit
/// words/symbols and the approximation window, then builds the span.
fn finish_mention(
    text: &str,
    tokens: &[Token],
    i: usize,
    mut value: f64,
    unnormalized: f64,
    precision: u8,
    mut j: usize,
) -> Option<(QuantityMention, usize)> {
    let mut unit = Unit::None;
    let mut span_start = tokens[i].start;
    let mut span_end = tokens[if j > i { j - 1 } else { i }].end.max(tokens[i].end);

    // Prefix currency symbol: `$3.26`.
    if i > 0 && tokens[i - 1].kind == TokenKind::Symbol {
        if let Some(c) = tokens[i - 1]
            .text
            .chars()
            .next()
            .and_then(currency_from_symbol)
        {
            unit = Unit::Currency(c);
            span_start = tokens[i - 1].start;
        }
    }
    // Prefix currency symbol before an accounting '(': `$(9.49)`.
    if unit == Unit::None
        && i > 1
        && tokens[i - 1].text == "("
        && tokens[i - 2].kind == TokenKind::Symbol
    {
        if let Some(c) = tokens[i - 2]
            .text
            .chars()
            .next()
            .and_then(currency_from_symbol)
        {
            unit = Unit::Currency(c);
            span_start = tokens[i - 2].start;
        }
    }

    // Suffix tokens: scale words, then unit word/symbol, e.g.
    // `3.26 billion CDN`, `37 K EUR`, `25.27 per cent`, `1.5 %`.
    let mut scaled = false;
    while let Some(t) = tokens.get(j) {
        let lower = t.lower();
        if !scaled {
            if let Some(m) = numparse::scale_multiplier(&lower) {
                value *= m;
                scaled = true;
                span_end = t.end;
                j += 1;
                continue;
            }
        }
        if t.kind == TokenKind::Symbol {
            if lower == "%" {
                unit = Unit::Percent;
                span_end = t.end;
                j += 1;
            } else if let Some(c) = t.text.chars().next().and_then(currency_from_symbol) {
                if unit == Unit::None {
                    unit = Unit::Currency(c);
                }
                span_end = t.end;
                j += 1;
            }
            break;
        }
        if lower == "per" && tokens.get(j + 1).map(|t| t.lower()).as_deref() == Some("cent") {
            unit = Unit::Percent;
            span_end = tokens[j + 1].end;
            j += 2;
            break;
        }
        if let Some(u) = unit_from_word(&lower) {
            // A unit *word* refines or sets the unit; a specific currency
            // code (CDN, USD) overrides a generic `$` prefix.
            if matches!(u, Unit::Currency(_)) || unit == Unit::None {
                unit = u;
            }
            span_end = t.end;
            j += 1;
            break;
        }
        break;
    }

    // Approximation window: up to 10 word tokens before the span.
    let mut window: Vec<String> = Vec::new();
    let mut k = i;
    while k > 0 && window.len() < 10 {
        k -= 1;
        if tokens[k].is_wordlike() {
            window.push(tokens[k].lower());
        }
    }
    window.reverse();
    let window_refs: Vec<&str> = window.iter().map(|s| s.as_str()).collect();
    let approx = detect_approximation(&window_refs);

    let m = QuantityMention {
        raw: text[span_start..span_end].to_string(),
        value,
        unnormalized,
        unit,
        precision,
        approx,
        start: span_start,
        end: span_end,
    };
    Some((m, j - i))
}

/// Extract a spelled-out number ("twenty pounds") starting at word index
/// `i`. Conservative: single small words ("one", "two") are not mentions.
fn extract_word_number(text: &str, tokens: &[Token], i: usize) -> Option<(QuantityMention, usize)> {
    // Gather the run of word tokens.
    let mut words: Vec<String> = Vec::new();
    let mut idx = i;
    while idx < tokens.len() && tokens[idx].kind == TokenKind::Word && words.len() < 6 {
        let lw = tokens[idx].lower();
        // hyphenated "twenty-five" → two words
        if let Some((a, b)) = lw.split_once('-') {
            words.push(a.to_string());
            words.push(b.to_string());
        } else {
            words.push(lw);
        }
        idx += 1;
    }
    let refs: Vec<&str> = words.iter().map(|s| s.as_str()).collect();
    let (value, consumed_words) = parse_word_number(&refs)?;

    // Map consumed word count back to token count (hyphenated tokens cover
    // two words).
    let mut toks = 0;
    let mut covered = 0;
    while covered < consumed_words {
        let lw = tokens[i + toks].lower();
        covered += if lw.contains('-') { 2 } else { 1 };
        toks += 1;
    }

    // Guard against prose "one", "two": require value ≥ 13, or more than
    // one word, or a recognizable unit word right after.
    let next_unit = tokens
        .get(i + toks)
        .and_then(|t| unit_from_word(&t.lower()));
    if value < 13.0 && toks == 1 && next_unit.is_none() {
        return None;
    }

    let mut unit = Unit::None;
    let mut span_end = tokens[i + toks - 1].end;
    let mut consumed = toks;
    if let Some(u) = next_unit {
        unit = u;
        span_end = tokens[i + toks].end;
        consumed += 1;
    }

    let m = QuantityMention {
        raw: text[tokens[i].start..span_end].to_string(),
        value,
        unnormalized: value,
        unit,
        precision: 0,
        approx: ApproxIndicator::None,
        start: tokens[i].start,
        end: span_end,
    };
    Some((m, consumed))
}

/// Parse a single table-cell content as a quantity (§III: "for tables, we
/// employ the same procedure and attempt to extract a single quantity
/// mention per cell, together with its unit if present").
///
/// Returns `None` for empty cells, placeholders (`--`, `n/a`) and cells
/// without a parsable quantity.
pub fn parse_cell_quantity(cell: &str) -> Option<QuantityMention> {
    let trimmed = cell.trim().trim_end_matches('*').trim();
    if trimmed.is_empty() {
        return None;
    }
    let placeholder = matches!(
        trimmed.to_lowercase().as_str(),
        "--" | "-" | "—" | "n/a" | "na" | "nil" | "none" | "tbd" | "?"
    );
    if placeholder {
        return None;
    }
    let mentions = extract_quantities(trimmed);
    // A cell should contain exactly one quantity; pick the first extracted
    // mention (noisy cells may carry footnote text after the number).
    mentions.into_iter().next()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::units::Currency;

    fn extract(text: &str) -> Vec<QuantityMention> {
        extract_quantities(text)
    }

    #[test]
    fn simple_number_with_count() {
        let ms = extract("reported by 38 patients");
        assert_eq!(ms.len(), 1);
        assert_eq!(ms[0].value, 38.0);
    }

    #[test]
    fn currency_prefix_with_scale_and_code() {
        let ms = extract("revenue of $3.26 billion CDN was up");
        assert_eq!(ms.len(), 1);
        let m = &ms[0];
        assert_eq!(m.value, 3.26e9);
        assert_eq!(m.unnormalized, 3.26);
        assert_eq!(m.unit, Unit::Currency(Currency::Cad));
        assert_eq!(m.raw, "$3.26 billion CDN");
        assert_eq!(m.precision, 2);
    }

    #[test]
    fn suffixed_scale_with_unit() {
        let ms = extract("the least affordable option with 37K EUR in Germany");
        assert_eq!(ms.len(), 1);
        assert_eq!(ms[0].value, 37_000.0);
        assert_eq!(ms[0].unnormalized, 37.0);
        assert_eq!(ms[0].unit, Unit::Currency(Currency::Eur));
        assert_eq!(ms[0].raw, "37K EUR");
    }

    #[test]
    fn percent_and_ratio_forms() {
        let ms = extract("it increased by 1.5% while margins rose 60 bps to 13.3%");
        let vals: Vec<(f64, Unit)> = ms.iter().map(|m| (m.value, m.unit)).collect();
        assert_eq!(
            vals,
            vec![
                (1.5, Unit::Percent),
                (60.0, Unit::BasisPoints),
                (13.3, Unit::Percent)
            ]
        );
    }

    #[test]
    fn per_cent_two_words() {
        let ms = extract("which was at 25.27 per cent.");
        assert_eq!(ms.len(), 1);
        assert_eq!(ms[0].unit, Unit::Percent);
        assert_eq!(ms[0].raw, "25.27 per cent");
    }

    #[test]
    fn approximation_indicator_set() {
        let ms = extract("a net loss of approximately $9.5 million on account");
        assert_eq!(ms.len(), 1);
        assert_eq!(ms[0].approx, ApproxIndicator::Approximate);
        assert_eq!(ms[0].value, 9.5e6);
    }

    #[test]
    fn bound_indicators() {
        let ms = extract("sold more than 500 units");
        assert_eq!(ms[0].approx, ApproxIndicator::LowerBound);
        let ms = extract("costs less than 200 dollars");
        assert_eq!(ms[0].approx, ApproxIndicator::UpperBound);
    }

    #[test]
    fn years_and_dates_excluded() {
        let ms = extract("In 2013 revenue was 3,263 and in 2012 it was 3,193");
        let vals: Vec<f64> = ms.iter().map(|m| m.value).collect();
        assert_eq!(vals, vec![3263.0, 3193.0]);
        let ms = extract("On Census Night 7th August 2001, 5,911 people were counted");
        let vals: Vec<f64> = ms.iter().map(|m| m.value).collect();
        // "7th" is alphanumeric (not a scale suffix) → dropped; 2001 is a
        // year next to a month → dropped; 5,911 people survives.
        assert_eq!(vals, vec![5911.0]);
    }

    #[test]
    fn year_sequences_excluded() {
        let ms = extract("columns 2013 2012 2011 hold income");
        assert!(ms.is_empty());
    }

    #[test]
    fn times_excluded() {
        let ms = extract("at 12:30 we sold 5,911 units");
        let vals: Vec<f64> = ms.iter().map(|m| m.value).collect();
        assert_eq!(vals, vec![5911.0]);
    }

    #[test]
    fn headings_and_refs_excluded() {
        let ms = extract("see Section 1.1 and [2] for the 42 cases");
        let vals: Vec<f64> = ms.iter().map(|m| m.value).collect();
        assert_eq!(vals, vec![42.0]);
    }

    #[test]
    fn identifiers_excluded() {
        let ms = extract("Win10 shipped on A3 hardware with 8 cores");
        let vals: Vec<f64> = ms.iter().map(|m| m.value).collect();
        assert_eq!(vals, vec![8.0]);
    }

    #[test]
    fn complex_quantities_excluded() {
        let ms = extract("going 5 ± 1 km per hour past 30 houses");
        let vals: Vec<f64> = ms.iter().map(|m| m.value).collect();
        assert_eq!(vals, vec![30.0]);
    }

    #[test]
    fn phone_numbers_excluded() {
        let ms = extract("call 555-123-4567 to order 12 boxes");
        let vals: Vec<f64> = ms.iter().map(|m| m.value).collect();
        assert_eq!(vals, vec![12.0]);
    }

    #[test]
    fn word_numbers() {
        let ms = extract("weighs twenty pounds exactly");
        assert_eq!(ms.len(), 1);
        assert_eq!(ms[0].value, 20.0);
        assert_eq!(ms[0].unit, Unit::Currency(Currency::Gbp)); // 'pounds' lexicon
        let ms = extract("we hired one engineer");
        assert!(ms.is_empty());
    }

    #[test]
    fn accounting_negative_with_symbol() {
        let ms = extract("a loss of $(9.49) Million this quarter");
        assert_eq!(ms.len(), 1);
        assert_eq!(ms[0].value, -9.49e6);
        assert_eq!(ms[0].unit, Unit::Currency(Currency::Usd));
    }

    #[test]
    fn spans_cover_surface_form() {
        let text = "up $70 million CDN or 2% from";
        for m in extract(text) {
            assert_eq!(&text[m.start..m.end], m.raw);
        }
    }

    #[test]
    fn cell_parsing() {
        let m = parse_cell_quantity(" 36900 ").unwrap();
        assert_eq!(m.value, 36900.0);
        let m = parse_cell_quantity("12.7%").unwrap();
        assert_eq!(m.unit, Unit::Percent);
        assert_eq!(m.value, 12.7);
        let m = parse_cell_quantity("$1.15").unwrap();
        assert_eq!(m.value, 1.15);
        let m = parse_cell_quantity("$(9.49) Million").unwrap();
        assert_eq!(m.value, -9.49e6);
        let m = parse_cell_quantity("0,877").unwrap();
        assert_eq!(m.value, 0.877);
        assert!(parse_cell_quantity("--").is_none());
        assert!(parse_cell_quantity("").is_none());
        assert!(parse_cell_quantity("n/a").is_none());
        assert!(parse_cell_quantity("BEV").is_none());
    }

    #[test]
    fn cell_with_footnote_star() {
        let m = parse_cell_quantity("9.95*").unwrap();
        assert_eq!(m.value, 9.95);
    }

    #[test]
    fn multiple_mentions_ordered() {
        let text = "of which there were 69 female patients and 54 male patients";
        let ms = extract(text);
        assert_eq!(
            ms.iter().map(|m| m.value).collect::<Vec<_>>(),
            vec![69.0, 54.0]
        );
        assert!(ms[0].start < ms[1].start);
    }
}

briq_json::json_struct!(QuantityMention {
    raw,
    value,
    unnormalized,
    unit,
    precision,
    approx,
    start,
    end,
});
