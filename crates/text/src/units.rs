//! Unit lexicon: currencies, percent, basis points and physical measures.
//!
//! The paper's tagger (§V-A) restricts itself to dollar, euro, percent,
//! pound and "unknown unit"; extraction (§III) additionally pulls units
//! from symbols (`$`, `€`), ISO-ish codes (`USD`, `CDN`), words
//! (`dollars`), and table headers (`($ Millions)`, `Emission (g/km)`).

/// Currency identification.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Currency {
    /// US dollar (also the generic `$`).
    Usd,
    /// Euro.
    Eur,
    /// British pound.
    Gbp,
    /// Canadian dollar (`CDN`, `CAD`).
    Cad,
    /// Indian rupee.
    Inr,
    /// Japanese yen.
    Jpy,
    /// A currency symbol/code we recognize as monetary but do not map.
    Other,
}

/// Physical / domain measures seen in the paper's examples.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Measure {
    /// Miles-per-gallon-equivalent (Fig. 1b).
    Mpge,
    /// Grams per kilometre (CO₂ emission, Fig. 1b).
    GramsPerKm,
    /// Kilowatt hours.
    KWh,
    /// Milligrams (clinical dosage, §XI).
    Mg,
    /// Kilometres.
    Km,
    /// Generic count of things ("patients", "units", "people").
    Count,
}

/// A quantity's unit.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Unit {
    /// A currency amount.
    Currency(Currency),
    /// Percentage (`%`, `per cent`, `percent`).
    Percent,
    /// Basis points (`bps`, Fig. 3).
    BasisPoints,
    /// A physical measure.
    Measure(Measure),
    /// No unit could be determined.
    None,
}

impl Unit {
    /// True if a unit was determined.
    pub fn is_specified(self) -> bool {
        !matches!(self, Unit::None)
    }

    /// Do two units agree? (Used by feature f8 and pruning.)
    ///
    /// Currency amounts in different currencies *disagree*; `Other`
    /// matches any currency (we know it's monetary, not which one).
    pub fn matches(self, other: Unit) -> bool {
        use Unit::*;
        match (self, other) {
            (Currency(a), Currency(b)) => {
                a == b || a == self::Currency::Other || b == self::Currency::Other
            }
            (a, b) => a == b,
        }
    }
}

/// Resolve a currency symbol character.
pub fn currency_from_symbol(c: char) -> Option<Currency> {
    Some(match c {
        '$' | '＄' => Currency::Usd,
        '€' => Currency::Eur,
        '£' | '￡' => Currency::Gbp,
        '₹' => Currency::Inr,
        '¥' | '￥' => Currency::Jpy,
        c if briq_regex::is_currency_symbol(c) => Currency::Other,
        _ => return None,
    })
}

/// Resolve a unit word or code (`usd`, `eur`, `cdn`, `dollars`, `percent`,
/// `bps`, `mpge`, `g/km`, …). Case-insensitive.
pub fn unit_from_word(w: &str) -> Option<Unit> {
    let w = w.to_lowercase();
    Some(match w.as_str() {
        "usd" | "dollar" | "dollars" | "us$" => Unit::Currency(Currency::Usd),
        "eur" | "euro" | "euros" => Unit::Currency(Currency::Eur),
        "gbp" | "pound" | "pounds" | "sterling" => Unit::Currency(Currency::Gbp),
        "cad" | "cdn" => Unit::Currency(Currency::Cad),
        "inr" | "rupee" | "rupees" | "rs" => Unit::Currency(Currency::Inr),
        "jpy" | "yen" => Unit::Currency(Currency::Jpy),
        "percent" | "pct" | "percentage" => Unit::Percent,
        "bps" | "bp" => Unit::BasisPoints,
        "mpge" | "mpg" => Unit::Measure(Measure::Mpge),
        "g/km" => Unit::Measure(Measure::GramsPerKm),
        "kwh" => Unit::Measure(Measure::KWh),
        "mg" => Unit::Measure(Measure::Mg),
        "km" => Unit::Measure(Measure::Km),
        "units" | "unit" | "patients" | "people" | "persons" | "vehicles" | "cases" => {
            Unit::Measure(Measure::Count)
        }
        _ => return None,
    })
}

/// Extract a unit hint from header/caption text like `($ Millions)`,
/// `Emission (g/km)`, `Income gains (in Mio)`, `MSRP in EUR`.
///
/// Returns the unit and an optional scale multiplier implied by the header
/// (`($ Millions)` → ×1e6).
pub fn unit_from_header(text: &str) -> (Unit, Option<f64>) {
    let lower = text.to_lowercase();
    let mut unit = Unit::None;
    let mut scale = None;
    for raw in lower.split(|c: char| {
        !(c.is_alphanumeric() || c == '$' || c == '€' || c == '£' || c == '%' || c == '/')
    }) {
        if raw.is_empty() {
            continue;
        }
        if unit == Unit::None {
            if let Some(u) = unit_from_word(raw) {
                unit = u;
            } else if let Some(c) = raw.chars().next().and_then(currency_from_symbol) {
                unit = Unit::Currency(c);
            } else if raw == "%" {
                unit = Unit::Percent;
            }
        }
        if scale.is_none() && raw.len() > 1 {
            // Single letters (`b`, `m`, `k`) only act as scales when glued
            // to a numeral (`37K`); as free-standing header tokens they
            // are almost always initials or labels ("segment B").
            if let Some(m) = crate::numparse::scale_multiplier(raw) {
                scale = Some(m);
            }
        }
    }
    // A bare symbol like "($ Millions)" won't split off cleanly above:
    if unit == Unit::None {
        if let Some(c) = lower.chars().find_map(currency_from_symbol) {
            unit = Unit::Currency(c);
        } else if lower.contains('%') {
            unit = Unit::Percent;
        }
    }
    (unit, scale)
}

/// The five-valued unit category used by the text-mention tagger (§V-A):
/// dollar, euro, percent, pound, unknown.
pub fn tagger_unit_category(u: Unit) -> usize {
    match u {
        Unit::Currency(Currency::Usd) | Unit::Currency(Currency::Cad) => 0,
        Unit::Currency(Currency::Eur) => 1,
        Unit::Percent | Unit::BasisPoints => 2,
        Unit::Currency(Currency::Gbp) => 3,
        _ => 4,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn symbols_resolve() {
        assert_eq!(currency_from_symbol('$'), Some(Currency::Usd));
        assert_eq!(currency_from_symbol('€'), Some(Currency::Eur));
        assert_eq!(currency_from_symbol('£'), Some(Currency::Gbp));
        assert_eq!(currency_from_symbol('₿'), Some(Currency::Other));
        assert_eq!(currency_from_symbol('x'), None);
    }

    #[test]
    fn words_resolve() {
        assert_eq!(unit_from_word("EUR"), Some(Unit::Currency(Currency::Eur)));
        assert_eq!(unit_from_word("CDN"), Some(Unit::Currency(Currency::Cad)));
        assert_eq!(unit_from_word("percent"), Some(Unit::Percent));
        assert_eq!(unit_from_word("bps"), Some(Unit::BasisPoints));
        assert_eq!(unit_from_word("MPGe"), Some(Unit::Measure(Measure::Mpge)));
        assert_eq!(unit_from_word("frobnitz"), None);
    }

    #[test]
    fn unit_matching() {
        assert!(Unit::Currency(Currency::Usd).matches(Unit::Currency(Currency::Usd)));
        assert!(!Unit::Currency(Currency::Usd).matches(Unit::Currency(Currency::Eur)));
        assert!(Unit::Currency(Currency::Usd).matches(Unit::Currency(Currency::Other)));
        assert!(!Unit::Percent.matches(Unit::BasisPoints));
        assert!(Unit::None.matches(Unit::None));
    }

    #[test]
    fn header_units() {
        let (u, s) = unit_from_header("($ Millions)");
        assert_eq!(u, Unit::Currency(Currency::Usd));
        assert_eq!(s, Some(1e6));

        let (u, s) = unit_from_header("Emission (g/km)");
        assert_eq!(u, Unit::Measure(Measure::GramsPerKm));
        assert_eq!(s, None);

        let (u, s) = unit_from_header("Income gains (in Mio)");
        assert_eq!(u, Unit::None);
        assert_eq!(s, Some(1e6));

        let (u, _) = unit_from_header("% Change");
        assert_eq!(u, Unit::Percent);

        let (u, s) = unit_from_header("Final rating");
        assert_eq!(u, Unit::None);
        assert_eq!(s, None);
    }

    #[test]
    fn tagger_categories_are_stable() {
        assert_eq!(tagger_unit_category(Unit::Currency(Currency::Usd)), 0);
        assert_eq!(tagger_unit_category(Unit::Currency(Currency::Eur)), 1);
        assert_eq!(tagger_unit_category(Unit::Percent), 2);
        assert_eq!(tagger_unit_category(Unit::Currency(Currency::Gbp)), 3);
        assert_eq!(tagger_unit_category(Unit::None), 4);
        assert_eq!(tagger_unit_category(Unit::Measure(Measure::Km)), 4);
    }
}

briq_json::json_unit_enum!(Currency {
    Usd,
    Eur,
    Gbp,
    Cad,
    Inr,
    Jpy,
    Other
});
briq_json::json_unit_enum!(Measure {
    Mpge,
    GramsPerKm,
    KWh,
    Mg,
    Km,
    Count
});
briq_json::json_enum!(Unit {
    Currency(Currency),
    Percent,
    BasisPoints,
    Measure(Measure),
    None,
});
