//! Offset-preserving tokenizer.
//!
//! Splits text into word, number, punctuation and symbol tokens while
//! keeping exact byte spans, so downstream consumers (quantity extraction,
//! context windows, proximity features) can always map back into the
//! original document.

/// Classification of a token.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokenKind {
    /// Alphabetic word (may contain internal hyphens/apostrophes: `e-tron`).
    Word,
    /// Numeric literal, possibly with grouping/decimal marks: `3,263`, `1.5`.
    Number,
    /// A word with embedded digits (`Win10`, `A3`) — never a quantity.
    Alphanumeric,
    /// Single punctuation character.
    Punct,
    /// Currency or other symbol (`$`, `€`, `%`, `±`).
    Symbol,
}

/// A token with its byte span in the source text.
#[derive(Debug, Clone, PartialEq)]
pub struct Token {
    /// The token text (owned slice of the source).
    pub text: String,
    /// Byte offset of the first byte.
    pub start: usize,
    /// Byte offset one past the last byte.
    pub end: usize,
    /// Token classification.
    pub kind: TokenKind,
}

impl Token {
    /// Lowercased token text.
    pub fn lower(&self) -> String {
        self.text.to_lowercase()
    }

    /// True for word-like tokens (words and alphanumerics).
    pub fn is_wordlike(&self) -> bool {
        matches!(self.kind, TokenKind::Word | TokenKind::Alphanumeric)
    }
}

fn is_symbol_char(c: char) -> bool {
    briq_regex::is_currency_symbol(c)
}

/// Character classes the tokenizer cares about.
#[derive(PartialEq, Clone, Copy)]
enum Cc {
    Alpha,
    Digit,
    Space,
    Sym,
    Punct,
}

fn classify(c: char) -> Cc {
    if c.is_whitespace() {
        Cc::Space
    } else if c.is_ascii_digit() || (!c.is_ascii() && c.is_numeric()) {
        Cc::Digit
    } else if c.is_alphabetic() {
        Cc::Alpha
    } else if c == '%' || c == '±' || c == '°' || is_symbol_char(c) {
        Cc::Sym
    } else {
        Cc::Punct
    }
}

/// Tokenize `text` into offset-annotated tokens.
///
/// Rules (tuned for quantity-bearing web text):
/// * digit runs may include `,` `.` as grouping/decimal marks when flanked
///   by digits (`3,263`, `1.5`, `2,29,866`), and `:` is excluded so times
///   split apart;
/// * a word directly abutting digits forms one [`TokenKind::Alphanumeric`]
///   token (`Win10`, `37K` is *two* tokens `37` + `K` only when the letter
///   run starts after the number — we keep `37K` together as alphanumeric?
///   No: trailing scale letters are kept with the number only by the
///   quantity parser; the tokenizer emits `37` and `K` separately when
///   separated, and `37K` as one `Alphanumeric` token when glued. The
///   quantity layer handles both);
/// * each punctuation char is its own token;
/// * currency/percent symbols are [`TokenKind::Symbol`] tokens.
pub fn tokenize(text: &str) -> Vec<Token> {
    let mut tokens = Vec::new();
    let chars: Vec<(usize, char)> = text.char_indices().collect();
    let n = chars.len();
    let mut i = 0;

    let push = |tokens: &mut Vec<Token>, start: usize, end: usize, kind: TokenKind| {
        tokens.push(Token {
            text: text[start..end].to_string(),
            start,
            end,
            kind,
        });
    };

    while i < n {
        let (bi, c) = chars[i];
        match classify(c) {
            Cc::Space => {
                i += 1;
            }
            Cc::Sym => {
                push(&mut tokens, bi, bi + c.len_utf8(), TokenKind::Symbol);
                i += 1;
            }
            Cc::Punct => {
                push(&mut tokens, bi, bi + c.len_utf8(), TokenKind::Punct);
                i += 1;
            }
            Cc::Digit => {
                // Consume a number: digits with internal , . used as marks.
                let start = bi;
                let mut j = i + 1;
                while j < n {
                    let (_, cj) = chars[j];
                    if classify(cj) == Cc::Digit {
                        j += 1;
                    } else if (cj == ',' || cj == '.')
                        && j + 1 < n
                        && classify(chars[j + 1].1) == Cc::Digit
                    {
                        j += 2;
                    } else {
                        break;
                    }
                }
                // Glued trailing letters (Win10-style came from Alpha side;
                // here: `10k`, `5th`, `2Q`) → alphanumeric token.
                let mut kind = TokenKind::Number;
                while j < n && classify(chars[j].1) == Cc::Alpha {
                    kind = TokenKind::Alphanumeric;
                    j += 1;
                }
                let end = if j < n { chars[j].0 } else { text.len() };
                push(&mut tokens, start, end, kind);
                i = j;
            }
            Cc::Alpha => {
                let start = bi;
                let mut j = i + 1;
                let mut kind = TokenKind::Word;
                while j < n {
                    let (_, cj) = chars[j];
                    if classify(cj) == Cc::Alpha {
                        j += 1;
                    } else if classify(cj) == Cc::Digit {
                        kind = TokenKind::Alphanumeric;
                        j += 1;
                    } else if (cj == '-' || cj == '\'' || cj == '’')
                        && j + 1 < n
                        && classify(chars[j + 1].1) == Cc::Alpha
                    {
                        j += 2;
                    } else {
                        break;
                    }
                }
                let end = if j < n { chars[j].0 } else { text.len() };
                push(&mut tokens, start, end, kind);
                i = j;
            }
        }
    }
    tokens
}

/// Find the index of the token covering byte offset `at`, or the nearest
/// token starting after it.
pub fn token_at(tokens: &[Token], at: usize) -> usize {
    tokens.partition_point(|t| t.end <= at)
}

/// Very light stemmer for overlap comparisons: lowercases and strips
/// regular plural/inflection suffixes (`prices` → `price`, `ratings` →
/// `rating`). Deliberately conservative — it only needs to make the same
/// word form on both sides of a comparison collide.
pub fn light_stem(word: &str) -> String {
    let w = word.to_lowercase();
    if w.len() > 4 && w.ends_with("ies") {
        return format!("{}y", &w[..w.len() - 3]);
    }
    if w.len() > 4 && (w.ends_with("ses") || w.ends_with("xes") || w.ends_with("hes")) {
        return w[..w.len() - 2].to_string();
    }
    if w.len() > 3 && w.ends_with('s') && !w.ends_with("ss") && !w.ends_with("us") {
        return w[..w.len() - 1].to_string();
    }
    w
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(s: &str) -> Vec<(String, TokenKind)> {
        tokenize(s).into_iter().map(|t| (t.text, t.kind)).collect()
    }

    #[test]
    fn words_and_numbers() {
        let toks = kinds("revenue of 3,263 in 2013");
        assert_eq!(
            toks,
            vec![
                ("revenue".into(), TokenKind::Word),
                ("of".into(), TokenKind::Word),
                ("3,263".into(), TokenKind::Number),
                ("in".into(), TokenKind::Word),
                ("2013".into(), TokenKind::Number),
            ]
        );
    }

    #[test]
    fn decimal_and_percent() {
        let toks = kinds("up 1.5% now");
        assert_eq!(toks[1], ("1.5".into(), TokenKind::Number));
        assert_eq!(toks[2], ("%".into(), TokenKind::Symbol));
    }

    #[test]
    fn currency_symbols() {
        let toks = kinds("$3.26 billion and 37 €");
        assert_eq!(toks[0], ("$".into(), TokenKind::Symbol));
        assert_eq!(toks[1], ("3.26".into(), TokenKind::Number));
        assert_eq!(toks[4], ("37".into(), TokenKind::Number));
        assert_eq!(toks[5], ("€".into(), TokenKind::Symbol));
    }

    #[test]
    fn alphanumerics_stay_together() {
        let toks = kinds("Win10 and A3 e-tron and 37K");
        assert_eq!(toks[0], ("Win10".into(), TokenKind::Alphanumeric));
        assert_eq!(toks[2], ("A3".into(), TokenKind::Alphanumeric));
        assert_eq!(toks[3], ("e-tron".into(), TokenKind::Word));
        assert_eq!(toks[5], ("37K".into(), TokenKind::Alphanumeric));
    }

    #[test]
    fn indian_grouping_kept() {
        let toks = kinds("2,29,866 units");
        assert_eq!(toks[0], ("2,29,866".into(), TokenKind::Number));
    }

    #[test]
    fn trailing_punct_splits() {
        let toks = kinds("total 123.");
        assert_eq!(toks[1], ("123".into(), TokenKind::Number));
        assert_eq!(toks[2], (".".into(), TokenKind::Punct));
    }

    #[test]
    fn spans_roundtrip() {
        let s = "net $0.9 billion CDN.";
        for t in tokenize(s) {
            assert_eq!(&s[t.start..t.end], t.text);
        }
    }

    #[test]
    fn hyphenated_words() {
        let toks = kinds("two-wheelers rose");
        assert_eq!(toks[0], ("two-wheelers".into(), TokenKind::Word));
    }

    #[test]
    fn token_at_finds_covering_token() {
        let s = "abc 123 def";
        let toks = tokenize(s);
        assert_eq!(token_at(&toks, 4), 1);
        assert_eq!(token_at(&toks, 6), 1);
        assert_eq!(token_at(&toks, 8), 2);
    }

    #[test]
    fn parenthesized_negative_pieces() {
        let toks = kinds("$(9.49) Million");
        assert_eq!(
            toks,
            vec![
                ("$".into(), TokenKind::Symbol),
                ("(".into(), TokenKind::Punct),
                ("9.49".into(), TokenKind::Number),
                (")".into(), TokenKind::Punct),
                ("Million".into(), TokenKind::Word),
            ]
        );
    }
}

briq_json::json_unit_enum!(TokenKind {
    Word,
    Number,
    Alphanumeric,
    Punct,
    Symbol
});
briq_json::json_struct!(Token {
    text,
    start,
    end,
    kind
});
