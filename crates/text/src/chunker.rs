//! Noun-phrase chunker over POS-lite tags.
//!
//! Grammar: `(DT)? (JJ | VBG/VBN | NNP)* (NN | NNP)+` — a determiner,
//! optional modifiers, then one or more noun heads. The extracted phrase
//! (lowercased, determiner dropped) feeds the phrase-overlap features
//! f4/f5 (§IV-B); e.g. the phrase "segment profit" in Fig. 3.

use crate::pos::{sentence_initial_flags, tag_tokens, PosTag};
use crate::sentence::split_sentences;
use crate::token::{tokenize, Token};

/// A noun phrase: token index range and normalized form.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NounPhrase {
    /// Index of the first token in the phrase (after any determiner).
    pub first_token: usize,
    /// Index one past the last token.
    pub end_token: usize,
    /// Lowercased, space-joined phrase text (determiner excluded).
    pub text: String,
}

/// Extract noun phrases from already-tagged tokens.
pub fn chunk_tagged(tokens: &[Token], tags: &[PosTag]) -> Vec<NounPhrase> {
    let mut phrases = Vec::new();
    let n = tokens.len();
    let mut i = 0;
    while i < n {
        // optional determiner
        let mut j = i;
        if tags[j] == PosTag::Determiner {
            j += 1;
        }
        // modifiers: adjectives, participles, proper nouns
        let content_start = j;
        let mut saw_modifier = false;
        while j < n && matches!(tags[j], PosTag::Adjective | PosTag::ProperNoun) {
            saw_modifier = true;
            j += 1;
        }
        // heads: at least one noun (or keep proper nouns already consumed
        // as a head if followed by nothing nominal)
        let mut head_end = j;
        while head_end < n && matches!(tags[head_end], PosTag::Noun | PosTag::ProperNoun) {
            head_end += 1;
        }
        let has_noun_head = head_end > j;
        let proper_only = saw_modifier
            && !has_noun_head
            && (content_start..j).all(|k| tags[k] == PosTag::ProperNoun);
        if has_noun_head || proper_only {
            let end = if has_noun_head { head_end } else { j };
            let text = tokens[content_start..end]
                .iter()
                .map(|t| t.lower())
                .collect::<Vec<_>>()
                .join(" ");
            phrases.push(NounPhrase {
                first_token: content_start,
                end_token: end,
                text,
            });
            i = end;
        } else {
            i = i.max(j).max(i + 1);
        }
    }
    phrases
}

/// Tokenize, tag and chunk `text` in one step.
pub fn noun_phrases(text: &str) -> Vec<NounPhrase> {
    let tokens = tokenize(text);
    let sentences = split_sentences(text);
    let flags = sentence_initial_flags(&tokens, &sentences);
    let tags = tag_tokens(&tokens, &flags);
    chunk_tagged(&tokens, &tags)
}

/// Just the normalized phrase strings of `text`.
pub fn noun_phrase_strings(text: &str) -> Vec<String> {
    noun_phrases(text).into_iter().map(|p| p.text).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn simple_np() {
        let ps = noun_phrase_strings("Segment profit was up");
        assert!(ps.contains(&"segment profit".to_string()), "{ps:?}");
    }

    #[test]
    fn determiner_dropped() {
        let ps = noun_phrase_strings("the total revenue grew");
        assert!(ps.contains(&"total revenue".to_string()), "{ps:?}");
    }

    #[test]
    fn adjective_modifiers_included() {
        let ps = noun_phrase_strings("the most common side affect is depression");
        assert!(ps.iter().any(|p| p.contains("side affect")), "{ps:?}");
    }

    #[test]
    fn proper_noun_compounds() {
        let ps = noun_phrase_strings("figures from Ford Focus Electric improved");
        assert!(
            ps.iter().any(|p| p.contains("ford focus electric")),
            "{ps:?}"
        );
    }

    #[test]
    fn multiple_phrases() {
        let ps = noun_phrase_strings("Sales of passenger vehicles beat commercial vehicles");
        assert!(ps.len() >= 3, "{ps:?}");
        assert!(ps.contains(&"passenger vehicles".to_string()));
        assert!(ps.contains(&"commercial vehicles".to_string()));
    }

    #[test]
    fn no_phrases_in_function_words() {
        let ps = noun_phrase_strings("and of to with");
        assert!(ps.is_empty());
    }

    #[test]
    fn empty_input() {
        assert!(noun_phrase_strings("").is_empty());
    }

    #[test]
    fn token_ranges_valid() {
        let text = "The net income of the previous year";
        for p in noun_phrases(text) {
            assert!(p.first_token < p.end_token);
            assert!(!p.text.is_empty());
        }
    }
}
