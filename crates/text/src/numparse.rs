//! Numeric-literal parsing across web-table formats.
//!
//! Handles the heterogeneous surface forms the paper calls out (§I, §III,
//! Fig. 1 and Fig. 5):
//!
//! * plain and grouped integers: `123`, `3,263`, `246,725`,
//! * Indian-style grouping: `2,29,866`,
//! * European decimal comma: `0,877` (only when unambiguous),
//! * decimals: `1.5`, `25.27`,
//! * accounting negatives: `(9.49)` and sign prefixes `-4`, `+2`,
//! * scale suffixes: `37K`, `2.3k`, `5M`, `1.2B`, `3bn`,
//! * scale words: `million`, `billion`, `Mio`, `crore`, `lakh`,
//! * spelled-out numbers: `twenty`, `one hundred and five`, `twenty-five`.

/// Parsed numeric literal with format metadata.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ParsedNumber {
    /// The numeric value as written, before scale words/suffixes.
    pub value: f64,
    /// Number of digits after the decimal point in the surface form.
    pub precision: u8,
    /// True if the surface form used digit grouping (`3,263`).
    pub grouped: bool,
    /// True for accounting-style `(…)` negatives.
    pub accounting_negative: bool,
}

/// Parse a numeral string (digits with optional grouping/decimal marks and
/// sign) into a [`ParsedNumber`]. Returns `None` if `s` is not a numeral
/// or would not produce a finite value; [`try_parse_numeral`] reports the
/// distinction.
pub fn parse_numeral(s: &str) -> Option<ParsedNumber> {
    try_parse_numeral(s).ok()
}

/// Like [`parse_numeral`], but distinguishes "not a numeral" from
/// adversarial numerals that overflow `f64` (a 400-digit run parses to
/// `inf`, which would poison every downstream value comparison).
pub fn try_parse_numeral(s: &str) -> Result<ParsedNumber, crate::error::TextError> {
    use crate::error::TextError;
    let raw = s;
    let s = s.trim();
    if s.is_empty() {
        return Err(TextError::NotANumeral);
    }
    let (s, accounting_negative) = if s.starts_with('(') && s.ends_with(')') {
        (&s[1..s.len() - 1], true)
    } else {
        (s, false)
    };
    let (s, neg) = match s.strip_prefix('-').or_else(|| s.strip_prefix('−')) {
        Some(rest) => (rest, true),
        None => (s.strip_prefix('+').unwrap_or(s), false),
    };
    let s = s.trim();
    if !s.chars().next().is_some_and(|c| c.is_ascii_digit()) {
        return Err(TextError::NotANumeral);
    }
    if !s
        .chars()
        .all(|c| c.is_ascii_digit() || c == ',' || c == '.')
    {
        return Err(TextError::NotANumeral);
    }
    let (mantissa, precision, grouped) = interpret_marks(s).ok_or(TextError::NotANumeral)?;
    if !mantissa.is_finite() {
        return Err(TextError::NonFiniteNumber {
            raw: crate::error::clip(raw),
        });
    }
    let sign = if neg || accounting_negative {
        -1.0
    } else {
        1.0
    };
    Ok(ParsedNumber {
        value: sign * mantissa,
        precision,
        grouped,
        accounting_negative,
    })
}

/// Decide which of `,` / `.` are grouping marks vs. the decimal point and
/// compute the value.
fn interpret_marks(s: &str) -> Option<(f64, u8, bool)> {
    let commas: Vec<usize> = s.match_indices(',').map(|(i, _)| i).collect();
    let dots: Vec<usize> = s.match_indices('.').map(|(i, _)| i).collect();

    // Both marks present: the right-most one is the decimal separator.
    if let (Some(&last_comma), Some(&last_dot)) = (commas.last(), dots.last()) {
        let (dec_pos, group) = if last_comma > last_dot {
            (last_comma, '.')
        } else {
            (last_dot, ',')
        };
        let int_part: String = s[..dec_pos]
            .chars()
            .filter(|c| c.is_ascii_digit())
            .collect();
        let frac_part = &s[dec_pos + 1..];
        if frac_part.contains(group) || frac_part.contains(if group == '.' { ',' } else { '.' }) {
            return None; // e.g. "1.2,3.4" nonsense
        }
        let v: f64 = format!("{int_part}.{frac_part}").parse().ok()?;
        return Some((v, frac_part.len() as u8, true));
    }

    // Only dots.
    if commas.is_empty() && !dots.is_empty() {
        if dots.len() > 1 {
            // "1.234.567" — European grouping; every group after the
            // first must have exactly three digits ("1..2" is not a
            // numeral).
            let groups: Vec<&str> = s.split('.').collect();
            let ok = !groups[0].is_empty()
                && groups[0].len() <= 3
                && groups[1..].iter().all(|g| g.len() == 3);
            if !ok {
                return None;
            }
            let digits: String = s.chars().filter(|c| c.is_ascii_digit()).collect();
            return Some((digits.parse().ok()?, 0, true));
        }
        let frac = &s[dots[0] + 1..];
        if frac.is_empty() {
            return None; // trailing "5." is not a numeral
        }
        // A single dot is a decimal point. ("1.234" could be grouping but
        // the dominant reading in English web text is decimal.)
        let v: f64 = s.parse().ok()?;
        return Some((v, frac.len() as u8, false));
    }

    // Only commas.
    if let Some(&last) = commas.last() {
        let tail = &s[last + 1..];
        let all_groups_of_three = tail.len() == 3 && group_sizes_ok(s);
        if all_groups_of_three {
            let digits: String = s.chars().filter(|c| c.is_ascii_digit()).collect();
            return Some((digits.parse().ok()?, 0, true));
        }
        if commas.len() == 1 {
            if tail.is_empty() {
                return None; // trailing "5," is not a numeral
            }
            // European decimal comma: "0,877", "2,67".
            let v: f64 = s.replace(',', ".").parse().ok()?;
            return Some((v, tail.len() as u8, false));
        }
        // Indian grouping "2,29,866": last group 3, earlier groups 1-2.
        if tail.len() == 3 {
            let digits: String = s.chars().filter(|c| c.is_ascii_digit()).collect();
            return Some((digits.parse().ok()?, 0, true));
        }
        return None;
    }

    // Plain digits.
    Some((s.parse().ok()?, 0, false))
}

/// Check Western grouping: first group 1–3 digits, all later groups 3.
/// A leading lone `0` (as in `0,877`) is never grouping — it reads as a
/// European decimal comma (Fig. 1c of the paper writes `0,877` for 0.877).
fn group_sizes_ok(s: &str) -> bool {
    let groups: Vec<&str> = s.split(',').collect();
    if groups.is_empty() || groups[0].is_empty() || groups[0].len() > 3 || groups[0] == "0" {
        return false;
    }
    groups[1..].iter().all(|g| g.len() == 3 && !g.contains('.'))
}

/// Multiplier for a scale word / suffix. Case-insensitive.
pub fn scale_multiplier(word: &str) -> Option<f64> {
    let w = word.to_lowercase();
    Some(match w.as_str() {
        "k" | "thousand" | "thousands" => 1e3,
        "lakh" | "lakhs" => 1e5,
        "m" | "mm" | "mio" | "million" | "millions" => 1e6,
        "crore" | "crores" => 1e7,
        "b" | "bn" | "billion" | "billions" => 1e9,
        "t" | "tn" | "trillion" | "trillions" => 1e12,
        _ => return None,
    })
}

/// Parse a numeral that may carry a glued scale suffix: `37K`, `2.3k`,
/// `1.2B`. Returns `(unscaled, multiplier, precision)`.
pub fn parse_suffixed(s: &str) -> Option<(f64, f64, u8)> {
    let s = s.trim();
    let split = s.find(|c: char| c.is_alphabetic())?;
    let (num, suffix) = s.split_at(split);
    let mult = scale_multiplier(suffix)?;
    let p = parse_numeral(num)?;
    Some((p.value, mult, p.precision))
}

const ONES: [(&str, u64); 19] = [
    ("one", 1),
    ("two", 2),
    ("three", 3),
    ("four", 4),
    ("five", 5),
    ("six", 6),
    ("seven", 7),
    ("eight", 8),
    ("nine", 9),
    ("ten", 10),
    ("eleven", 11),
    ("twelve", 12),
    ("thirteen", 13),
    ("fourteen", 14),
    ("fifteen", 15),
    ("sixteen", 16),
    ("seventeen", 17),
    ("eighteen", 18),
    ("nineteen", 19),
];

const TENS: [(&str, u64); 8] = [
    ("twenty", 20),
    ("thirty", 30),
    ("forty", 40),
    ("fifty", 50),
    ("sixty", 60),
    ("seventy", 70),
    ("eighty", 80),
    ("ninety", 90),
];

fn ones_value(w: &str) -> Option<u64> {
    ONES.iter().find(|&&(s, _)| s == w).map(|&(_, v)| v)
}

fn tens_value(w: &str) -> Option<u64> {
    TENS.iter().find(|&&(s, _)| s == w).map(|&(_, v)| v)
}

/// Parse a sequence of lowercase words as a spelled-out cardinal.
///
/// Accepts forms like `["twenty"]`, `["twenty", "five"]` (also written
/// `twenty-five` after hyphen splitting), `["one", "hundred", "and",
/// "five"]`, `["two", "million"]`. Returns the value and how many words
/// were consumed from the front.
pub fn parse_word_number(words: &[&str]) -> Option<(f64, usize)> {
    try_parse_word_number(words).ok()
}

/// Like [`parse_word_number`], but distinguishes "no number here" from a
/// spelled-out number that overflows 64-bit arithmetic (a hostile page can
/// repeat "trillion" until `u64` wraps; checked arithmetic turns that into
/// an error instead of a debug-mode panic).
pub fn try_parse_word_number(words: &[&str]) -> Result<(f64, usize), crate::error::TextError> {
    use crate::error::TextError;
    let overflow = |_| TextError::WordNumberOverflow;
    let mut total: u64 = 0;
    let mut current: u64 = 0;
    let mut consumed = 0;
    let mut i = 0;
    while i < words.len() {
        let w = words[i];
        if let Some(v) = ones_value(w) {
            current = current.checked_add(v).ok_or(()).map_err(overflow)?;
        } else if let Some(v) = tens_value(w) {
            current = current.checked_add(v).ok_or(()).map_err(overflow)?;
            // allow "twenty five" / "twenty-five"
            if i + 1 < words.len() {
                if let Some(o) = ones_value(words[i + 1]) {
                    if o < 10 {
                        current = current.checked_add(o).ok_or(()).map_err(overflow)?;
                        i += 1;
                    }
                }
            }
        } else if w == "hundred" {
            if current == 0 {
                current = 1;
            }
            current = current.checked_mul(100).ok_or(()).map_err(overflow)?;
        } else if w == "thousand" || w == "million" || w == "billion" || w == "trillion" {
            let mult = scale_multiplier(w).ok_or(TextError::NotANumeral)? as u64;
            if current == 0 {
                current = 1;
            }
            total = current
                .checked_mul(mult)
                .and_then(|scaled| total.checked_add(scaled))
                .ok_or(())
                .map_err(overflow)?;
            current = 0;
        } else if w == "and" && consumed > 0 {
            // connective inside "one hundred and five"
        } else {
            break;
        }
        i += 1;
        consumed = i;
    }
    if consumed == 0 {
        return Err(TextError::NotANumeral);
    }
    // trailing "and" should not be consumed
    if words[consumed - 1] == "and" {
        consumed -= 1;
        if consumed == 0 {
            return Err(TextError::NotANumeral);
        }
    }
    let value = total.checked_add(current).ok_or(()).map_err(overflow)?;
    Ok((value as f64, consumed))
}

/// Order of magnitude (floor of log10 of |v|); 0 for v == 0.
pub fn order_of_magnitude(v: f64) -> i32 {
    if v == 0.0 || !v.is_finite() {
        0
    } else {
        v.abs().log10().floor() as i32
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn val(s: &str) -> f64 {
        parse_numeral(s).unwrap().value
    }

    #[test]
    fn plain_integers() {
        assert_eq!(val("123"), 123.0);
        assert_eq!(val("0"), 0.0);
    }

    #[test]
    fn western_grouping() {
        assert_eq!(val("3,263"), 3263.0);
        assert_eq!(val("246,725"), 246725.0);
        assert_eq!(val("1,144,716"), 1144716.0);
        assert!(parse_numeral("3,263").unwrap().grouped);
    }

    #[test]
    fn indian_grouping() {
        assert_eq!(val("2,29,866"), 229866.0);
    }

    #[test]
    fn european_decimal_comma() {
        assert_eq!(val("0,877"), 0.877);
        assert_eq!(val("2,67"), 2.67);
        assert_eq!(parse_numeral("2,67").unwrap().precision, 2);
        assert_eq!(parse_numeral("0,877").unwrap().precision, 3);
    }

    #[test]
    fn decimals_and_precision() {
        let p = parse_numeral("25.27").unwrap();
        assert_eq!(p.value, 25.27);
        assert_eq!(p.precision, 2);
        assert_eq!(parse_numeral("1.543").unwrap().precision, 3);
        assert_eq!(parse_numeral("42").unwrap().precision, 0);
    }

    #[test]
    fn mixed_marks() {
        assert_eq!(val("1,234.56"), 1234.56);
        assert_eq!(val("1.234,56"), 1234.56);
        assert_eq!(val("1.234.567"), 1234567.0);
    }

    #[test]
    fn signs_and_accounting() {
        assert_eq!(val("-4"), -4.0);
        assert_eq!(val("+2.5"), 2.5);
        let p = parse_numeral("(9.49)").unwrap();
        assert_eq!(p.value, -9.49);
        assert!(p.accounting_negative);
    }

    #[test]
    fn rejects_non_numbers() {
        assert!(parse_numeral("abc").is_none());
        assert!(parse_numeral("").is_none());
        assert!(parse_numeral("12a").is_none());
        assert!(parse_numeral(",123").is_none());
    }

    #[test]
    fn ambiguous_comma_as_decimal_requires_single() {
        // "1,23" single comma, tail != 3 → decimal comma
        assert_eq!(val("1,23"), 1.23);
        // "12,34,56" weird grouping → rejected
        assert!(parse_numeral("12,34,56").is_none());
    }

    #[test]
    fn suffix_scales() {
        assert_eq!(parse_suffixed("37K"), Some((37.0, 1e3, 0)));
        assert_eq!(parse_suffixed("2.3k"), Some((2.3, 1e3, 1)));
        assert_eq!(parse_suffixed("1.2B"), Some((1.2, 1e9, 1)));
        assert_eq!(parse_suffixed("3bn"), Some((3.0, 1e9, 0)));
        assert!(parse_suffixed("37Q").is_none());
        assert!(parse_suffixed("37").is_none());
    }

    #[test]
    fn scale_words() {
        assert_eq!(scale_multiplier("million"), Some(1e6));
        assert_eq!(scale_multiplier("Mio"), Some(1e6));
        assert_eq!(scale_multiplier("crore"), Some(1e7));
        assert_eq!(scale_multiplier("pound"), None);
    }

    #[test]
    fn word_numbers() {
        assert_eq!(parse_word_number(&["twenty"]), Some((20.0, 1)));
        assert_eq!(parse_word_number(&["twenty", "five"]), Some((25.0, 2)));
        assert_eq!(
            parse_word_number(&["one", "hundred", "and", "five"]),
            Some((105.0, 4))
        );
        assert_eq!(
            parse_word_number(&["two", "million"]),
            Some((2_000_000.0, 2))
        );
        assert_eq!(
            parse_word_number(&["three", "hundred", "thousand"]),
            Some((300_000.0, 3))
        );
        assert_eq!(parse_word_number(&["pounds"]), None);
    }

    #[test]
    fn word_number_stops_at_non_number() {
        let (v, n) = parse_word_number(&["twenty", "pounds"]).unwrap();
        assert_eq!(v, 20.0);
        assert_eq!(n, 1);
    }

    #[test]
    fn trailing_and_not_consumed() {
        let (v, n) = parse_word_number(&["two", "hundred", "and"]).unwrap();
        assert_eq!(v, 200.0);
        assert_eq!(n, 2);
    }

    #[test]
    fn huge_digit_runs_rejected_as_non_finite() {
        use crate::error::TextError;
        let huge = "9".repeat(400);
        assert!(parse_numeral(&huge).is_none());
        match try_parse_numeral(&huge) {
            Err(TextError::NonFiniteNumber { raw }) => assert!(raw.ends_with('…')),
            other => panic!("expected NonFiniteNumber, got {other:?}"),
        }
        assert_eq!(try_parse_numeral("abc"), Err(TextError::NotANumeral));
        // A merely large but finite numeral still parses.
        assert!(parse_numeral(&"9".repeat(300)).is_some());
    }

    #[test]
    fn word_number_overflow_is_an_error_not_a_panic() {
        use crate::error::TextError;
        // "nineteen hundred hundred …" — each "hundred" multiplies, so a
        // dozen of them overflow u64.
        let words: Vec<&str> = std::iter::once("nineteen")
            .chain(std::iter::repeat_n("hundred", 12))
            .collect();
        assert_eq!(
            try_parse_word_number(&words),
            Err(TextError::WordNumberOverflow)
        );
        assert!(parse_word_number(&words).is_none());
    }

    #[test]
    fn magnitude() {
        assert_eq!(order_of_magnitude(37000.0), 4);
        assert_eq!(order_of_magnitude(37.0), 1);
        assert_eq!(order_of_magnitude(0.05), -2);
        assert_eq!(order_of_magnitude(0.0), 0);
        assert_eq!(order_of_magnitude(-250.0), 2);
    }
}
