//! Sentence and paragraph segmentation.
//!
//! Paragraphs are the atomic building blocks of BriQ documents (§III);
//! sentences delimit the *local context* of a text mention (feature f4 and
//! the tagger's local scope, §V-A).

/// Common abbreviations that should not end a sentence.
const ABBREVIATIONS: &[&str] = &[
    "mr", "mrs", "ms", "dr", "prof", "vs", "etc", "inc", "ltd", "co", "corp", "no", "vol", "fig",
    "eq", "ca", "approx", "jan", "feb", "mar", "apr", "jun", "jul", "aug", "sep", "sept", "oct",
    "nov", "dec", "st", "e.g", "i.e", "u.s", "u.k", "mio",
];

/// Split `text` into paragraphs on blank lines. Returns `(start, end)` byte
/// spans; whitespace-only segments are skipped.
pub fn split_paragraphs(text: &str) -> Vec<(usize, usize)> {
    let mut spans = Vec::new();
    let mut start = 0usize;
    let bytes = text.as_bytes();
    let mut i = 0;
    while i < bytes.len() {
        // A blank line: '\n' followed by optional spaces and another '\n'.
        if bytes[i] == b'\n' {
            let mut j = i + 1;
            while j < bytes.len() && (bytes[j] == b' ' || bytes[j] == b'\t' || bytes[j] == b'\r') {
                j += 1;
            }
            if j < bytes.len() && bytes[j] == b'\n' {
                push_trimmed(text, start, i, &mut spans);
                // skip the run of blank lines
                while j < bytes.len() && bytes[j].is_ascii_whitespace() {
                    j += 1;
                }
                start = j;
                i = j;
                continue;
            }
        }
        i += 1;
    }
    push_trimmed(text, start, text.len(), &mut spans);
    spans
}

fn push_trimmed(text: &str, start: usize, end: usize, spans: &mut Vec<(usize, usize)>) {
    if start >= end {
        return;
    }
    let seg = &text[start..end];
    let l = seg.len() - seg.trim_start().len();
    let r = seg.len() - seg.trim_end().len();
    if start + l < end - r {
        spans.push((start + l, end - r));
    }
}

/// Split `text` into sentences. Returns `(start, end)` byte spans.
///
/// A sentence ends at `.`, `!` or `?` followed by whitespace and an
/// uppercase letter/digit — except after known abbreviations, initials
/// (`J.`), or decimal numbers (`1.5`).
pub fn split_sentences(text: &str) -> Vec<(usize, usize)> {
    let chars: Vec<(usize, char)> = text.char_indices().collect();
    let n = chars.len();
    let mut spans = Vec::new();
    let mut start = 0usize;
    let mut i = 0;
    while i < n {
        let (bi, c) = chars[i];
        if c == '!' || c == '?' || c == '.' {
            let end_candidate = bi + c.len_utf8();
            let is_boundary = if c == '.' {
                !is_decimal_context(&chars, i) && !is_abbreviation(text, bi)
            } else {
                true
            } && followed_by_sentence_start(&chars, i);
            if is_boundary {
                push_trimmed(text, start, end_candidate, &mut spans);
                start = end_candidate;
            }
        }
        i += 1;
    }
    push_trimmed(text, start, text.len(), &mut spans);
    spans
}

/// `1.5` — dot flanked by digits.
fn is_decimal_context(chars: &[(usize, char)], i: usize) -> bool {
    let prev_digit = i > 0 && chars[i - 1].1.is_ascii_digit();
    let next_digit = i + 1 < chars.len() && chars[i + 1].1.is_ascii_digit();
    prev_digit && next_digit
}

/// The word before the period is an abbreviation or a single initial.
fn is_abbreviation(text: &str, dot_at: usize) -> bool {
    let before = &text[..dot_at];
    // `p + len_utf8`, not `p + 1`: the delimiter may be multi-byte.
    let word_start = before
        .char_indices()
        .rev()
        .find(|&(_, c)| !(c.is_alphanumeric() || c == '.'))
        .map(|(p, c)| p + c.len_utf8())
        .unwrap_or(0);
    let word = before[word_start..].trim_end_matches('.').to_lowercase();
    word.len() == 1 || ABBREVIATIONS.contains(&word.as_str())
}

/// After the terminator: whitespace then uppercase/digit (or end of text).
fn followed_by_sentence_start(chars: &[(usize, char)], i: usize) -> bool {
    let mut j = i + 1;
    // allow closing quotes/parens directly after the terminator
    while j < chars.len() && matches!(chars[j].1, '"' | '\'' | ')' | '”' | '’') {
        j += 1;
    }
    if j >= chars.len() {
        return true;
    }
    if !chars[j].1.is_whitespace() {
        return false;
    }
    while j < chars.len() && chars[j].1.is_whitespace() {
        j += 1;
    }
    j >= chars.len()
        || chars[j].1.is_uppercase()
        || chars[j].1.is_ascii_digit()
        || chars[j].1 == '$'
        || briq_regex::is_currency_symbol(chars[j].1)
}

/// Find the sentence span containing byte offset `at`.
pub fn sentence_containing(spans: &[(usize, usize)], at: usize) -> Option<(usize, usize)> {
    spans.iter().copied().find(|&(s, e)| s <= at && at < e)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_sentences() {
        let t = "Sales were up 5%. Segment profit was up 11%. Margins grew.";
        let s = split_sentences(t);
        assert_eq!(s.len(), 3);
        assert_eq!(&t[s[0].0..s[0].1], "Sales were up 5%.");
    }

    #[test]
    fn decimals_do_not_split() {
        let t = "It was at 25.27 per cent. Volumes grew.";
        let s = split_sentences(t);
        assert_eq!(s.len(), 2);
        assert!(t[s[0].0..s[0].1].contains("25.27"));
    }

    #[test]
    fn abbreviations_do_not_split() {
        let t = "Revenue was ca. 5 million. Profit grew.";
        let s = split_sentences(t);
        assert_eq!(s.len(), 2);
    }

    #[test]
    fn initials_do_not_split() {
        let t = "J. Smith said so. We agree.";
        let s = split_sentences(t);
        assert_eq!(s.len(), 2);
    }

    #[test]
    fn question_and_exclamation() {
        let t = "Did it grow? Yes! By 5%.";
        let s = split_sentences(t);
        assert_eq!(s.len(), 3);
    }

    #[test]
    fn paragraphs_split_on_blank_lines() {
        let t = "First paragraph\nstill first.\n\nSecond paragraph.\n\n\nThird.";
        let p = split_paragraphs(t);
        assert_eq!(p.len(), 3);
        assert!(t[p[0].0..p[0].1].starts_with("First"));
        assert!(t[p[1].0..p[1].1].starts_with("Second"));
        assert!(t[p[2].0..p[2].1].starts_with("Third"));
    }

    #[test]
    fn single_paragraph() {
        let t = "only one block of text";
        assert_eq!(split_paragraphs(t), vec![(0, t.len())]);
    }

    #[test]
    fn empty_text() {
        assert!(split_paragraphs("").is_empty());
        assert!(split_sentences("").is_empty());
        assert!(split_paragraphs("  \n\n  ").is_empty());
    }

    #[test]
    fn sentence_containing_works() {
        let t = "One. Two here. Three.";
        let s = split_sentences(t);
        let at = t.find("Two").unwrap();
        let span = sentence_containing(&s, at).unwrap();
        assert_eq!(&t[span.0..span.1], "Two here.");
        assert_eq!(sentence_containing(&s, t.len() + 5), None);
    }

    #[test]
    fn multibyte_delimiter_before_period_does_not_panic() {
        // A multi-byte char directly before the candidate word used to
        // push the word-start offset into the middle of that char.
        let t = "]P.M$' 🗶j4r. Next sentence.";
        let s = split_sentences(t);
        assert!(!s.is_empty());
        let t = "€x. Done.";
        let _ = split_sentences(t);
        let t = "日本語の文です。 Value 5. Next.";
        let _ = split_sentences(t);
    }

    #[test]
    fn sentence_before_dollar_amount() {
        let t = "Income fell. $50 wholesale cost gives profit.";
        let s = split_sentences(t);
        assert_eq!(s.len(), 2);
    }
}
