//! Cue-word dictionaries for aggregation functions and approximation
//! modifiers (§IV-B features f11/f12, §V-A tagger features).

/// The aggregation functions BriQ considers over table cells (§II-A).
///
/// The evaluation restricts itself to the four kinds that occur in ≥5% of
/// tables (sum, difference, percentage, change ratio); average, min and max
/// are supported by the framework and exercised in the extension benches.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AggregationKind {
    /// Row/column total.
    Sum,
    /// Difference of two cells `a − b`.
    Difference,
    /// Percentage of two cells `a / b · 100%`.
    Percentage,
    /// Change ratio `(a − b) / a`.
    ChangeRatio,
    /// Row/column average.
    Average,
    /// Row/column maximum.
    Max,
    /// Row/column minimum.
    Min,
}

impl AggregationKind {
    /// The four kinds used in the paper's experiments (§II-A).
    pub const EVALUATED: [AggregationKind; 4] = [
        Self::Sum,
        Self::Difference,
        Self::Percentage,
        Self::ChangeRatio,
    ];

    /// All supported kinds.
    pub const ALL: [AggregationKind; 7] = [
        Self::Sum,
        Self::Difference,
        Self::Percentage,
        Self::ChangeRatio,
        Self::Average,
        Self::Max,
        Self::Min,
    ];

    /// Short name used in reports (matches the paper's table headers).
    pub fn name(self) -> &'static str {
        match self {
            Self::Sum => "sum",
            Self::Difference => "diff",
            Self::Percentage => "percent",
            Self::ChangeRatio => "ratio",
            Self::Average => "avg",
            Self::Max => "max",
            Self::Min => "min",
        }
    }
}

/// Approximation indicator attached to a text mention (feature f11, §IV-B).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum ApproxIndicator {
    /// An explicit exactness cue ("exactly", "precisely").
    Exact,
    /// An approximation cue ("about", "ca.", "nearly", "approximately").
    Approximate,
    /// An upper-bound cue ("less than", "at most", "under").
    UpperBound,
    /// A lower-bound cue ("more than", "at least", "over").
    LowerBound,
    /// No cue found.
    #[default]
    None,
}

/// Cue words for each aggregation function (§V-A: "total, summed, overall,
/// together" for sum, and analogous lists for the other tags).
pub fn aggregation_cues(kind: AggregationKind) -> &'static [&'static str] {
    match kind {
        AggregationKind::Sum => &[
            "total",
            "totals",
            "totalled",
            "totaled",
            "sum",
            "summed",
            "overall",
            "together",
            "combined",
            "altogether",
            "in-all",
        ],
        AggregationKind::Difference => &[
            "difference",
            "fell",
            "rose",
            "gained",
            "lost",
            "dropped",
            "up",
            "down",
            "more",
            "fewer",
            "less",
            "cheaper",
            "higher",
            "lower",
            "increase",
            "decrease",
            "increased",
            "decreased",
            "gap",
            "change",
        ],
        AggregationKind::Percentage => &[
            "percent",
            "percentage",
            "share",
            "proportion",
            "fraction",
            "accounted",
            "accounting",
            "constitute",
            "constitutes",
            "represents",
        ],
        AggregationKind::ChangeRatio => &[
            "growth",
            "grew",
            "rate",
            "increased",
            "decreased",
            "jumped",
            "surged",
            "climbed",
            "declined",
            "shrank",
            "compared",
            "year-on-year",
            "change",
        ],
        AggregationKind::Average => &["average", "avg", "mean", "typically", "per"],
        AggregationKind::Max => &[
            "maximum",
            "max",
            "highest",
            "largest",
            "most",
            "biggest",
            "top",
            "least-affordable",
            "peak",
        ],
        AggregationKind::Min => &[
            "minimum", "min", "lowest", "smallest", "least", "cheapest", "bottom",
        ],
    }
}

const APPROX_CUES: &[&str] = &[
    "about",
    "around",
    "approximately",
    "ca",
    "circa",
    "nearly",
    "almost",
    "roughly",
    "some",
    "approx",
    "estimated",
];
const EXACT_CUES: &[&str] = &["exactly", "precisely", "exact"];
const UPPER_CUES: &[(&str, &str)] = &[
    ("less", "than"),
    ("fewer", "than"),
    ("at", "most"),
    ("under", ""),
    ("below", ""),
    ("up", "to"),
];
const LOWER_CUES: &[(&str, &str)] = &[
    ("more", "than"),
    ("over", ""),
    ("at", "least"),
    ("above", ""),
    ("exceeding", ""),
    ("exceeds", ""),
];

/// Detect the approximation indicator from the lowercase words immediately
/// preceding a text mention (closest cue wins; the paper uses a 10-word
/// window, which the caller supplies).
pub fn detect_approximation(preceding: &[&str]) -> ApproxIndicator {
    // scan from nearest to farthest
    for (i, w) in preceding.iter().enumerate().rev() {
        let w = w.trim_end_matches('.');
        if APPROX_CUES.contains(&w) {
            return ApproxIndicator::Approximate;
        }
        if EXACT_CUES.contains(&w) {
            return ApproxIndicator::Exact;
        }
        let next = preceding.get(i + 1).copied().unwrap_or("");
        for &(a, b) in UPPER_CUES {
            if w == a && (b.is_empty() || next == b) {
                return ApproxIndicator::UpperBound;
            }
        }
        for &(a, b) in LOWER_CUES {
            if w == a && (b.is_empty() || next == b) {
                return ApproxIndicator::LowerBound;
            }
        }
    }
    ApproxIndicator::None
}

/// Count cue words supporting `kind` among `words` (already lowercased).
/// Used by the tagger's immediate/local/global context features (§V-A).
pub fn count_aggregation_cues(kind: AggregationKind, words: &[&str]) -> usize {
    let cues = aggregation_cues(kind);
    words
        .iter()
        .filter(|w| cues.contains(&w.trim_end_matches(['.', ','])))
        .count()
}

/// Infer the single best-supported aggregation among the evaluated kinds
/// from `words`, or `None` when no cue is present.
pub fn infer_aggregation(words: &[&str]) -> Option<AggregationKind> {
    let mut best: Option<(AggregationKind, usize)> = None;
    for kind in AggregationKind::EVALUATED {
        let c = count_aggregation_cues(kind, words);
        if c > 0 && best.is_none_or(|(_, bc)| c > bc) {
            best = Some((kind, c));
        }
    }
    best.map(|(k, _)| k)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sum_cues_present() {
        assert!(aggregation_cues(AggregationKind::Sum).contains(&"total"));
        assert!(aggregation_cues(AggregationKind::Sum).contains(&"overall"));
    }

    #[test]
    fn approx_detection() {
        assert_eq!(
            detect_approximation(&["about"]),
            ApproxIndicator::Approximate
        );
        assert_eq!(
            detect_approximation(&["costs", "exactly"]),
            ApproxIndicator::Exact
        );
        assert_eq!(
            detect_approximation(&["more", "than"]),
            ApproxIndicator::LowerBound
        );
        assert_eq!(
            detect_approximation(&["less", "than"]),
            ApproxIndicator::UpperBound
        );
        assert_eq!(
            detect_approximation(&["at", "least"]),
            ApproxIndicator::LowerBound
        );
        assert_eq!(detect_approximation(&["ca."]), ApproxIndicator::Approximate);
        assert_eq!(
            detect_approximation(&["the", "value"]),
            ApproxIndicator::None
        );
        assert_eq!(detect_approximation(&[]), ApproxIndicator::None);
    }

    #[test]
    fn nearest_cue_wins() {
        // "about" is closer to the mention than "exactly"
        assert_eq!(
            detect_approximation(&["exactly", "but", "about"]),
            ApproxIndicator::Approximate
        );
    }

    #[test]
    fn cue_counting() {
        let words = ["a", "total", "of", "patients", "overall"];
        assert_eq!(count_aggregation_cues(AggregationKind::Sum, &words), 2);
        assert_eq!(count_aggregation_cues(AggregationKind::Max, &words), 0);
    }

    #[test]
    fn aggregation_inference() {
        assert_eq!(
            infer_aggregation(&["total", "of"]),
            Some(AggregationKind::Sum)
        );
        assert_eq!(
            infer_aggregation(&["growth", "rate", "compared"]),
            Some(AggregationKind::ChangeRatio)
        );
        assert_eq!(infer_aggregation(&["the", "report"]), None);
    }

    #[test]
    fn names_match_paper() {
        assert_eq!(AggregationKind::Sum.name(), "sum");
        assert_eq!(AggregationKind::ChangeRatio.name(), "ratio");
        assert_eq!(AggregationKind::EVALUATED.len(), 4);
    }
}

briq_json::json_unit_enum!(AggregationKind {
    Sum,
    Difference,
    Percentage,
    ChangeRatio,
    Average,
    Max,
    Min,
});
briq_json::json_unit_enum!(ApproxIndicator {
    Exact,
    Approximate,
    UpperBound,
    LowerBound,
    None,
});
