//! Rule/lexicon part-of-speech tagger ("POS-lite").
//!
//! The noun-phrase overlap features (f4/f5, §IV-B) need noun phrases, not
//! full parses. This tagger combines closed-class word lists with suffix
//! heuristics — deterministic, fast, and applied uniformly to text and
//! table contexts so overlap comparisons stay meaningful (see DESIGN.md).

use crate::token::{Token, TokenKind};

/// Coarse part-of-speech tags.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PosTag {
    /// Determiners: the, a, an, this, …
    Determiner,
    /// Adjectives (incl. comparative/superlative).
    Adjective,
    /// Common nouns.
    Noun,
    /// Proper nouns (capitalized, non-sentence-initial heuristic not
    /// attempted — capitalization suffices for chunking).
    ProperNoun,
    /// Verbs (incl. auxiliaries).
    Verb,
    /// Adverbs.
    Adverb,
    /// Prepositions / subordinating conjunctions.
    Preposition,
    /// Pronouns.
    Pronoun,
    /// Coordinating conjunctions.
    Conjunction,
    /// Cardinal numbers.
    Number,
    /// Punctuation and symbols.
    Other,
}

const DETERMINERS: &[&str] = &[
    "the", "a", "an", "this", "that", "these", "those", "each", "every", "some", "any", "no",
    "both", "all", "its", "their", "his", "her", "our", "your", "my",
];

const PREPOSITIONS: &[&str] = &[
    "of", "in", "on", "at", "by", "for", "with", "from", "to", "into", "over", "under", "about",
    "between", "among", "through", "during", "per", "than", "as", "since", "until", "within",
    "across", "against", "via",
];

const PRONOUNS: &[&str] = &[
    "i", "you", "he", "she", "it", "we", "they", "them", "him", "us", "me", "which", "who", "whom",
    "whose", "what",
];

const CONJUNCTIONS: &[&str] = &["and", "or", "but", "nor", "so", "yet", "while", "whereas"];

const AUX_VERBS: &[&str] = &[
    "is", "are", "was", "were", "be", "been", "being", "am", "has", "have", "had", "having", "do",
    "does", "did", "will", "would", "can", "could", "shall", "should", "may", "might", "must",
];

const COMMON_VERBS: &[&str] = &[
    "said",
    "say",
    "says",
    "reported",
    "report",
    "reports",
    "rose",
    "fell",
    "grew",
    "increased",
    "decreased",
    "gained",
    "lost",
    "sold",
    "bought",
    "earned",
    "made",
    "remained",
    "compared",
    "counted",
    "dominated",
    "achieved",
    "undergo",
    "shows",
    "show",
    "showed",
    "see",
    "refer",
    "refers",
    "beat",
    "exceeded",
    "exceeds",
    "outsold",
    "outperformed",
];

const COMMON_ADJECTIVES: &[&str] = &[
    "new",
    "old",
    "high",
    "low",
    "higher",
    "lower",
    "highest",
    "lowest",
    "most",
    "least",
    "common",
    "final",
    "total",
    "net",
    "gross",
    "average",
    "overall",
    "last",
    "previous",
    "next",
    "same",
    "such",
    "other",
    "more",
    "fewer",
    "affordable",
    "expensive",
    "cheap",
    "cheaper",
    "strong",
    "senior",
    "domestic",
];

const COMMON_ADVERBS: &[&str] = &[
    "very",
    "only",
    "also",
    "not",
    "n't",
    "too",
    "up",
    "down",
    "primarily",
    "mostly",
    "however",
];

/// Tag a single token given whether it starts a sentence.
pub fn tag_token(token: &Token, sentence_initial: bool) -> PosTag {
    match token.kind {
        TokenKind::Number => return PosTag::Number,
        TokenKind::Punct | TokenKind::Symbol => return PosTag::Other,
        TokenKind::Alphanumeric => return PosTag::ProperNoun, // Win10, A3
        TokenKind::Word => {}
    }
    let lower = token.lower();
    let l = lower.as_str();
    if DETERMINERS.contains(&l) {
        return PosTag::Determiner;
    }
    if PREPOSITIONS.contains(&l) {
        return PosTag::Preposition;
    }
    if PRONOUNS.contains(&l) {
        return PosTag::Pronoun;
    }
    if CONJUNCTIONS.contains(&l) {
        return PosTag::Conjunction;
    }
    if AUX_VERBS.contains(&l) || COMMON_VERBS.contains(&l) {
        return PosTag::Verb;
    }
    if COMMON_ADJECTIVES.contains(&l) {
        return PosTag::Adjective;
    }
    if COMMON_ADVERBS.contains(&l) {
        return PosTag::Adverb;
    }
    // Capitalized mid-sentence → proper noun.
    let first_upper = token.text.chars().next().is_some_and(|c| c.is_uppercase());
    if first_upper && !sentence_initial {
        return PosTag::ProperNoun;
    }
    // Suffix heuristics.
    if l.ends_with("ly") && l.len() > 3 {
        return PosTag::Adverb;
    }
    if (l.ends_with("ing") || l.ends_with("ed")) && l.len() > 4 {
        // gerunds/participles act adjectivally before nouns often enough;
        // we call them verbs and let the chunker treat `VBG NN` as `JJ NN`.
        return PosTag::Verb;
    }
    if l.ends_with("ous")
        || l.ends_with("ful")
        || l.ends_with("ive")
        || l.ends_with("able")
        || l.ends_with("ible")
        || l.ends_with("al")
        || l.ends_with("ic")
    {
        return PosTag::Adjective;
    }
    PosTag::Noun
}

/// Tag a token sequence. `sentence_starts` marks tokens that begin a
/// sentence (index-based), used for the proper-noun heuristic.
pub fn tag_tokens(tokens: &[Token], sentence_starts: &[bool]) -> Vec<PosTag> {
    tokens
        .iter()
        .enumerate()
        .map(|(i, t)| tag_token(t, sentence_starts.get(i).copied().unwrap_or(i == 0)))
        .collect()
}

/// Compute per-token sentence-initial flags from sentence spans.
pub fn sentence_initial_flags(tokens: &[Token], sentences: &[(usize, usize)]) -> Vec<bool> {
    let mut flags = vec![false; tokens.len()];
    for &(s, _) in sentences {
        // first token whose start >= s
        if let Some(i) = tokens.iter().position(|t| t.start >= s) {
            if let Some(f) = flags.get_mut(i) {
                *f = true;
            }
        }
    }
    flags
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::token::tokenize;

    fn tags(s: &str) -> Vec<PosTag> {
        let toks = tokenize(s);
        let flags: Vec<bool> = (0..toks.len()).map(|i| i == 0).collect();
        tag_tokens(&toks, &flags)
    }

    #[test]
    fn closed_classes() {
        let t = tags("the profit of a segment");
        assert_eq!(t[0], PosTag::Determiner);
        assert_eq!(t[1], PosTag::Noun);
        assert_eq!(t[2], PosTag::Preposition);
        assert_eq!(t[3], PosTag::Determiner);
        assert_eq!(t[4], PosTag::Noun);
    }

    #[test]
    fn numbers_and_symbols() {
        let t = tags("up 11% fast");
        assert_eq!(t[1], PosTag::Number);
        assert_eq!(t[2], PosTag::Other);
    }

    #[test]
    fn capitalized_mid_sentence_is_proper() {
        let t = tags("sales at Honeywell rose");
        assert_eq!(t[2], PosTag::ProperNoun);
    }

    #[test]
    fn sentence_initial_capital_not_proper() {
        let t = tags("Sales rose");
        assert_eq!(t[0], PosTag::Noun);
    }

    #[test]
    fn suffix_heuristics() {
        let t = tags("a quickly shrinking beautiful economic margin");
        assert_eq!(t[1], PosTag::Adverb);
        assert_eq!(t[2], PosTag::Verb);
        assert_eq!(t[3], PosTag::Adjective);
        assert_eq!(t[4], PosTag::Adjective);
        assert_eq!(t[5], PosTag::Noun);
    }

    #[test]
    fn initial_flags_from_sentences() {
        let s = "One two. Three four.";
        let toks = tokenize(s);
        let sents = crate::sentence::split_sentences(s);
        let flags = sentence_initial_flags(&toks, &sents);
        assert!(flags[0]);
        // "Three" is the 4th token (One, two, ., Three)
        let three_idx = toks.iter().position(|t| t.text == "Three").unwrap();
        assert!(flags[three_idx]);
        assert!(!flags[1]);
    }
}
