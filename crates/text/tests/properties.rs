//! Property-based tests for the text substrate.

use briq_text::numparse::{order_of_magnitude, parse_numeral};
use briq_text::quantity::extract_quantities;
use briq_text::sentence::{split_paragraphs, split_sentences};
use briq_text::token::tokenize;
use proptest::prelude::*;

proptest! {
    /// Token spans tile the non-whitespace source text and round-trip.
    #[test]
    fn token_spans_roundtrip(s in "\\PC{0,120}") {
        let toks = tokenize(&s);
        let mut prev_end = 0usize;
        for t in &toks {
            prop_assert!(t.start >= prev_end, "tokens must not overlap");
            prop_assert!(t.end > t.start);
            prop_assert_eq!(&s[t.start..t.end], t.text.as_str());
            prev_end = t.end;
        }
    }

    /// Formatting an integer with Western grouping parses back exactly.
    #[test]
    fn grouped_integers_roundtrip(v in 0u64..10_000_000_000) {
        let grouped = group_thousands(v);
        let p = parse_numeral(&grouped).expect("grouped integer must parse");
        prop_assert_eq!(p.value, v as f64);
        prop_assert_eq!(p.precision, 0);
    }

    /// Plain decimal strings parse to the same value f64 parsing gives.
    #[test]
    fn decimals_match_std_parse(int in 0u32..1_000_000, frac in 0u32..1000) {
        let s = format!("{int}.{frac:03}");
        let p = parse_numeral(&s).unwrap();
        let expect: f64 = s.parse().unwrap();
        prop_assert!((p.value - expect).abs() < 1e-9);
        prop_assert_eq!(p.precision, 3);
    }

    /// Negation symmetry: "-x" parses to the negation of "x".
    #[test]
    fn negation_symmetry(int in 1u32..1_000_000) {
        let pos = parse_numeral(&int.to_string()).unwrap().value;
        let neg = parse_numeral(&format!("-{int}")).unwrap().value;
        let acc = parse_numeral(&format!("({int})")).unwrap().value;
        prop_assert_eq!(neg, -pos);
        prop_assert_eq!(acc, -pos);
    }

    /// Sentence spans are ordered, non-overlapping, and within bounds.
    #[test]
    fn sentence_spans_wellformed(s in "[A-Za-z0-9 .,!?%$]{0,200}") {
        let spans = split_sentences(&s);
        let mut prev = 0usize;
        for (a, b) in spans {
            prop_assert!(a >= prev);
            prop_assert!(b <= s.len());
            prop_assert!(a < b);
            prev = b;
        }
    }

    /// Paragraph spans are ordered, non-overlapping, non-blank.
    #[test]
    fn paragraph_spans_wellformed(s in "[a-z \n]{0,200}") {
        let spans = split_paragraphs(&s);
        let mut prev = 0usize;
        for (a, b) in spans {
            prop_assert!(a >= prev);
            prop_assert!(a < b && b <= s.len());
            prop_assert!(!s[a..b].trim().is_empty());
            prev = b;
        }
    }

    /// Quantity extraction is total and spans round-trip to surface forms.
    #[test]
    fn extraction_is_total(s in "\\PC{0,200}") {
        for m in extract_quantities(&s) {
            prop_assert_eq!(&s[m.start..m.end], m.raw.as_str());
            prop_assert!(m.value.is_finite());
        }
    }

    /// Every extracted value's scale() agrees with order_of_magnitude.
    #[test]
    fn scale_consistency(v in 1u64..1_000_000_000) {
        let text = format!("we counted {v} things");
        let ms = extract_quantities(&text);
        prop_assert_eq!(ms.len(), 1);
        prop_assert_eq!(ms[0].scale(), order_of_magnitude(v as f64));
    }

    /// Extraction of "N units" always finds exactly N when N is not a year.
    #[test]
    fn plain_counts_extracted(v in 1u64..1800) {
        let text = format!("the team sold {v} units today");
        let ms = extract_quantities(&text);
        prop_assert_eq!(ms.len(), 1);
        prop_assert_eq!(ms[0].value, v as f64);
    }
}

fn group_thousands(v: u64) -> String {
    let s = v.to_string();
    let mut out = String::new();
    let bytes = s.as_bytes();
    for (i, b) in bytes.iter().enumerate() {
        if i > 0 && (bytes.len() - i).is_multiple_of(3) {
            out.push(',');
        }
        out.push(*b as char);
    }
    out
}
