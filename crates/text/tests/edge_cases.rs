//! Edge-case tests for the text substrate: adversarial numerals, messy
//! web formatting, exclusion heuristics, unit corner cases.

use briq_text::cues::{detect_approximation, ApproxIndicator};
use briq_text::numparse::{parse_numeral, parse_suffixed, parse_word_number};
use briq_text::quantity::{extract_quantities, parse_cell_quantity};
use briq_text::token::{light_stem, tokenize, TokenKind};
use briq_text::units::{unit_from_header, unit_from_word, Currency, Unit};

mod numerals {
    use super::*;

    #[test]
    fn leading_zeros() {
        assert_eq!(parse_numeral("007").unwrap().value, 7.0);
        assert_eq!(parse_numeral("0.50").unwrap().value, 0.5);
        assert_eq!(parse_numeral("0.50").unwrap().precision, 2);
    }

    #[test]
    fn huge_and_tiny() {
        assert_eq!(
            parse_numeral("999,999,999,999").unwrap().value,
            999_999_999_999.0
        );
        assert_eq!(parse_numeral("0.0001").unwrap().value, 0.0001);
        assert_eq!(parse_numeral("0.0001").unwrap().precision, 4);
    }

    #[test]
    fn misplaced_separators_rejected() {
        for bad in ["1,,2", "1..2", ",5", "5,", "5.", "1,23,4", "12,345,6"] {
            assert!(
                parse_numeral(bad).is_none(),
                "{bad:?} should not parse as a numeral"
            );
        }
    }

    #[test]
    fn sign_variants() {
        assert_eq!(parse_numeral("−42").unwrap().value, -42.0); // U+2212
        assert_eq!(parse_numeral("(0.5)").unwrap().value, -0.5);
        assert!(parse_numeral("--5").is_none());
        assert!(parse_numeral("(5").is_none());
    }

    #[test]
    fn suffix_case_insensitive() {
        assert_eq!(parse_suffixed("5m").unwrap().1, 1e6);
        assert_eq!(parse_suffixed("5M").unwrap().1, 1e6);
        assert_eq!(parse_suffixed("5T").unwrap().1, 1e12);
        // a spaced suffix is tolerated (the tokenizer normally splits it)
        assert_eq!(parse_suffixed("5 K").unwrap().1, 1e3);
    }

    #[test]
    fn word_numbers_compound() {
        assert_eq!(parse_word_number(&["ninety", "nine"]), Some((99.0, 2)));
        assert_eq!(
            parse_word_number(&["one", "hundred", "twenty", "three"]),
            Some((123.0, 4))
        );
        assert_eq!(
            parse_word_number(&["twelve", "thousand"]),
            Some((12_000.0, 2))
        );
    }
}

mod extraction {
    use super::*;

    #[test]
    fn adjacent_mentions_do_not_merge() {
        let ms = extract_quantities("scores of 15 20 35 were posted");
        let vals: Vec<f64> = ms.iter().map(|m| m.value).collect();
        assert_eq!(vals, vec![15.0, 20.0, 35.0]);
    }

    #[test]
    fn mention_at_text_boundaries() {
        let ms = extract_quantities("42");
        assert_eq!(ms.len(), 1);
        let ms = extract_quantities("the answer is 42");
        assert_eq!(ms[0].start, 14);
        let ms = extract_quantities("42 is the answer");
        assert_eq!(ms[0].start, 0);
    }

    #[test]
    fn currency_symbol_and_code_combined() {
        let ms = extract_quantities("priced at $12 USD here");
        assert_eq!(ms.len(), 1);
        assert_eq!(ms[0].unit, Unit::Currency(Currency::Usd));
    }

    #[test]
    fn euro_symbol_postfix() {
        let ms = extract_quantities("costs 37€ in Berlin");
        assert_eq!(ms.len(), 1);
        assert_eq!(ms[0].unit, Unit::Currency(Currency::Eur));
    }

    #[test]
    fn negative_quantities_in_text() {
        let ms = extract_quantities("the delta was (9.49) million this year");
        assert_eq!(ms.len(), 1);
        assert_eq!(ms[0].value, -9.49e6);
    }

    #[test]
    fn year_not_excluded_when_clearly_a_count() {
        // a 4-digit number with a unit noun is a quantity, not a year
        let ms = extract_quantities("the factory shipped 2020 units to stores");
        assert_eq!(ms.len(), 1, "{ms:?}");
        assert_eq!(ms[0].value, 2020.0);
    }

    #[test]
    fn fy_and_quarter_years_excluded() {
        let ms = extract_quantities("in FY 2013 sales hit 900 units");
        let vals: Vec<f64> = ms.iter().map(|m| m.value).collect();
        assert_eq!(vals, vec![900.0]);
    }

    #[test]
    fn percent_without_space() {
        let ms = extract_quantities("up 13.3% on margin");
        assert_eq!(ms[0].unit, Unit::Percent);
        assert_eq!(ms[0].raw, "13.3%");
    }

    #[test]
    fn multiple_units_different_mentions() {
        let ms = extract_quantities("37K EUR in Germany and 39K USD in the US");
        assert_eq!(ms.len(), 2);
        assert_eq!(ms[0].unit, Unit::Currency(Currency::Eur));
        assert_eq!(ms[1].unit, Unit::Currency(Currency::Usd));
        assert_eq!(ms[0].value, 37_000.0);
        assert_eq!(ms[1].value, 39_000.0);
    }

    #[test]
    fn empty_and_whitespace_text() {
        assert!(extract_quantities("").is_empty());
        assert!(extract_quantities("   \n\t  ").is_empty());
        assert!(extract_quantities("no digits whatsoever").is_empty());
    }

    #[test]
    fn bare_currency_symbol_not_a_mention() {
        assert!(extract_quantities("the $ sign and the % sign").is_empty());
    }
}

mod cells {
    use super::*;

    #[test]
    fn cells_with_units_inside() {
        assert_eq!(parse_cell_quantity("105 MPGe").unwrap().value, 105.0);
        assert_eq!(
            parse_cell_quantity("60 bps").unwrap().unit,
            Unit::BasisPoints
        );
        assert_eq!(
            parse_cell_quantity("$1.15").unwrap().unit,
            Unit::Currency(Currency::Usd)
        );
    }

    #[test]
    fn cell_placeholders() {
        for p in ["--", "-", "n/a", "N/A", "NIL", "?", "—", ""] {
            assert!(parse_cell_quantity(p).is_none(), "{p:?} should be empty");
        }
    }

    #[test]
    fn cell_with_trailing_footnote() {
        assert_eq!(parse_cell_quantity("1,234*").unwrap().value, 1234.0);
        assert_eq!(parse_cell_quantity("  42  ").unwrap().value, 42.0);
    }

    #[test]
    fn textual_cells_have_no_quantity() {
        for c in ["BEV", "Focus E", "total", "male"] {
            assert!(parse_cell_quantity(c).is_none(), "{c:?}");
        }
    }
}

mod units_and_cues {
    use super::*;

    #[test]
    fn header_with_multiple_hints_takes_first_unit() {
        let (u, s) = unit_from_header("Revenue ($ Millions, unaudited)");
        assert_eq!(u, Unit::Currency(Currency::Usd));
        assert_eq!(s, Some(1e6));
    }

    #[test]
    fn header_single_letters_not_scales() {
        let (_, s) = unit_from_header("Group B totals");
        assert_eq!(s, None);
        let (_, s) = unit_from_header("Column K");
        assert_eq!(s, None);
    }

    #[test]
    fn unit_words_case_insensitive() {
        assert_eq!(unit_from_word("EUR"), unit_from_word("eur"));
        assert_eq!(unit_from_word("Percent"), Some(Unit::Percent));
    }

    #[test]
    fn bound_cues_two_words_required() {
        // "more" alone (without "than") is not a bound cue
        assert_eq!(detect_approximation(&["more"]), ApproxIndicator::None);
        assert_eq!(
            detect_approximation(&["more", "than"]),
            ApproxIndicator::LowerBound
        );
        // "up to" is an upper bound
        assert_eq!(
            detect_approximation(&["up", "to"]),
            ApproxIndicator::UpperBound
        );
    }
}

mod tokens {
    use super::*;

    #[test]
    fn unicode_words_tokenize() {
        let toks = tokenize("Saarbrücken reported 42 cases");
        assert_eq!(toks[0].text, "Saarbrücken");
        assert_eq!(toks[0].kind, TokenKind::Word);
    }

    #[test]
    fn mixed_script_roundtrip() {
        let s = "价格 is 37 € or ¥250";
        for t in tokenize(s) {
            assert_eq!(&s[t.start..t.end], t.text);
        }
    }

    #[test]
    fn stemming_cases() {
        assert_eq!(light_stem("prices"), "price");
        assert_eq!(light_stem("categories"), "category");
        assert_eq!(light_stem("boxes"), "box");
        assert_eq!(light_stem("classes"), "class");
        // not over-stemmed
        assert_eq!(light_stem("glass"), "glass");
        assert_eq!(light_stem("bus"), "bus");
        assert_eq!(light_stem("was"), "was"); // length guard
    }

    #[test]
    fn apostrophes_kept_in_words() {
        let toks = tokenize("the company's profit");
        assert_eq!(toks[1].text, "company's");
    }
}
