//! Paragraph synthesis with exact gold alignments.
//!
//! Every quantity written into the text records a [`GoldAlignment`] span,
//! so generated corpora come with perfect ground truth — the role the 8
//! hired annotators played for the paper's `tableS` (§VII-A).

use briq_core::GoldAlignment;
use briq_table::TableMentionKind;
use briq_text::cues::AggregationKind;
use rand::prelude::*;

use crate::domain::{ColumnKind, Domain};
use crate::numbers::{render_mention, MentionStyle};
use crate::tablegen::GeneratedTable;

/// Text-rendering knobs.
#[derive(Debug, Clone, Copy)]
pub struct TextGenConfig {
    /// Probability that a sentence names the row entity.
    pub entity_hint_rate: f64,
    /// Probability that a sentence names the column attribute.
    pub attr_hint_rate: f64,
    /// Probability of an explicit approximation cue before approximate
    /// surfaces ("about", "nearly").
    pub approx_cue_rate: f64,
    /// Probability of rendering the unit with the mention (`$`, noun).
    pub unit_rate: f64,
}

impl Default for TextGenConfig {
    fn default() -> Self {
        TextGenConfig {
            entity_hint_rate: 0.45,
            attr_hint_rate: 0.30,
            approx_cue_rate: 0.6,
            unit_rate: 0.6,
        }
    }
}

/// What a sentence should reference.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum MentionPlan {
    /// One data cell `(table, data_row, data_col)`.
    Single {
        /// Index of the table on the page.
        table: usize,
        /// Data-row index within that table.
        row: usize,
        /// Data-column index within that table.
        col: usize,
    },
    /// Sum over a data column.
    Sum {
        /// Index of the table on the page.
        table: usize,
        /// Data column whose values are summed.
        col: usize,
    },
    /// Difference of two cells in the same data row.
    Diff {
        /// Index of the table on the page.
        table: usize,
        /// Data row both operand cells live in.
        row: usize,
        /// Column of the minuend cell.
        col_a: usize,
        /// Column of the subtrahend cell.
        col_b: usize,
    },
    /// Percentage of two cells in the same data column.
    Percent {
        /// Index of the table on the page.
        table: usize,
        /// Data column both operand cells live in.
        col: usize,
        /// Row of the numerator cell.
        row_num: usize,
        /// Row of the denominator cell.
        row_den: usize,
    },
    /// Change ratio of two cells in the same data row.
    Ratio {
        /// Index of the table on the page.
        table: usize,
        /// Data row both operand cells live in.
        row: usize,
        /// Column of the new-value cell.
        col_new: usize,
        /// Column of the old-value cell.
        col_old: usize,
    },
    /// A number that refers to no table.
    Distractor,
    /// A ranking reference: the minimum or maximum of a data column
    /// (extended aggregates, §II-A).
    Ranking {
        /// Table index.
        table: usize,
        /// Data column.
        col: usize,
        /// Max (true) or min (false).
        maximum: bool,
    },
}

/// Incremental text builder that records gold spans.
struct Builder {
    text: String,
    gold: Vec<GoldAlignment>,
}

impl Builder {
    fn push(&mut self, s: &str) {
        self.text.push_str(s);
    }

    fn push_mention(
        &mut self,
        surface: &str,
        table: usize,
        kind: TableMentionKind,
        cells: Vec<(usize, usize)>,
    ) {
        let start = self.text.len();
        self.text.push_str(surface);
        self.gold.push(GoldAlignment {
            mention_start: start,
            mention_end: self.text.len(),
            table,
            kind,
            cells,
        });
    }

    fn push_plain_number(&mut self, surface: &str) {
        self.text.push_str(surface);
    }
}

const APPROX_CUES: [&str; 3] = ["about ", "nearly ", "approximately "];

fn fmt_pct(v: f64) -> String {
    let s = format!("{v:.1}");
    s.trim_end_matches('0').trim_end_matches('.').to_string()
}

/// Render a document's paragraph for `tables` following `plans`.
/// Returns the text and its gold alignments.
pub fn render_document(
    domain: Domain,
    tables: &[GeneratedTable],
    plans: &[MentionPlan],
    cfg: &TextGenConfig,
    rng: &mut impl Rng,
) -> (String, Vec<GoldAlignment>) {
    let mut b = Builder {
        text: String::new(),
        gold: Vec::new(),
    };

    // Topical opener so segmentation has overlap to work with.
    let opener = domain.filler()[rng.random_range(0..domain.filler().len())];
    b.push(&capitalize(opener));
    b.push(". ");

    for (i, plan) in plans.iter().enumerate() {
        render_plan(domain, tables, *plan, cfg, rng, &mut b);
        // occasional filler between sentences
        if rng.random_bool(0.25) && i + 1 < plans.len() {
            let f = domain.filler()[rng.random_range(0..domain.filler().len())];
            b.push(&capitalize(f));
            b.push(". ");
        }
    }
    let text = b.text.trim_end().to_string();
    (text, b.gold)
}

fn capitalize(s: &str) -> String {
    let mut chars = s.chars();
    match chars.next() {
        Some(c) => c.to_uppercase().collect::<String>() + chars.as_str(),
        None => String::new(),
    }
}

/// Pick a mention style appropriate to a value. Approximate renderings
/// are frequent — "such approximate mentions are frequent" (§I).
fn pick_style(v: f64, rng: &mut impl Rng) -> MentionStyle {
    let roll: f64 = rng.random_range(0.0..1.0);
    if roll < 0.26 {
        MentionStyle::Exact
    } else if roll < 0.38 {
        MentionStyle::Plain
    } else if roll < 0.58 && v.abs() >= 1e6 {
        MentionStyle::ScaleWord
    } else if roll < 0.72 && v.abs() >= 1e4 {
        MentionStyle::SuffixK
    } else if roll < 0.80 {
        MentionStyle::TruncatedDigit
    } else if roll < 0.88 {
        MentionStyle::RoundedDigit
    } else {
        MentionStyle::Approximate
    }
}

fn render_plan(
    domain: Domain,
    tables: &[GeneratedTable],
    plan: MentionPlan,
    cfg: &TextGenConfig,
    rng: &mut impl Rng,
    b: &mut Builder,
) {
    match plan {
        MentionPlan::Single { table, row, col } => {
            let g = &tables[table];
            let value = g.values[row][col];
            let kind = g.kinds[col];
            let cell_surface = {
                let (gr, gc) = g.grid_pos(row, col);
                g.table.cells[gr][gc].clone()
            };
            let style = if kind == ColumnKind::Percent || kind == ColumnKind::Rating {
                MentionStyle::Exact
            } else {
                pick_style(value, rng)
            };
            let (surface, approx) = render_mention(value, style, &cell_surface);

            let entity_hint = rng.random_bool(cfg.entity_hint_rate);
            let attr_hint = rng.random_bool(cfg.attr_hint_rate);
            // Real prose around single-cell quantities is littered with
            // words that double as aggregation cues ("up", "overall",
            // "growth"); sprinkle them in so cue features are noisy.
            let misleading = rng.random_bool(0.35);
            if misleading && rng.random_bool(0.5) {
                b.push("Overall, ");
            }
            if entity_hint {
                b.push(&capitalize(&g.entities[row]));
                b.push(" recorded ");
            } else {
                b.push("The figure reached ");
            }
            if approx && rng.random_bool(cfg.approx_cue_rate) {
                b.push(APPROX_CUES[rng.random_range(0..APPROX_CUES.len())]);
            }
            let with_unit = rng.random_bool(cfg.unit_rate);
            let (prefix, suffix) = decorations(kind, domain, with_unit);
            let full = format!("{prefix}{surface}{suffix}");
            let (gr, gc) = g.grid_pos(row, col);
            b.push_mention(&full, table, TableMentionKind::SingleCell, vec![(gr, gc)]);
            if attr_hint {
                b.push(" in ");
                b.push(&g.attrs[col]);
            }
            if misleading {
                let tails = [
                    ", up on the year",
                    ", a growth the report highlights",
                    " compared with earlier estimates",
                    ", its share of the overall market",
                ];
                b.push(tails[rng.random_range(0..tails.len())]);
            }
            b.push(". ");
        }
        MentionPlan::Sum { table, col } => {
            let g = &tables[table];
            let total: f64 = (0..g.n_rows()).map(|r| g.values[r][col]).sum();
            let cells: Vec<(usize, usize)> = (0..g.n_rows()).map(|r| g.grid_pos(r, col)).collect();
            // Large totals are often written approximately; small counts
            // exactly ("a total of 123 patients").
            let style = if total.abs() >= 1e4 {
                pick_style(total, rng)
            } else {
                MentionStyle::Plain
            };
            let (surface, approx) = render_mention(total, style, &format!("{total}"));
            let kind = g.kinds[col];
            let with_unit = rng.random_bool(cfg.unit_rate);
            let (prefix, suffix) = decorations(kind, domain, with_unit);
            // A quarter of sum references come without any lexical cue —
            // the tagger legitimately misses those (its recall cost,
            // §V-A).
            let cued = rng.random_bool(0.75);
            if cued {
                b.push("A total of ");
            } else {
                b.push("The sheet closes at ");
            }
            if approx && rng.random_bool(cfg.approx_cue_rate) {
                b.push(APPROX_CUES[rng.random_range(0..APPROX_CUES.len())]);
            }
            b.push_mention(
                &format!("{prefix}{surface}{suffix}"),
                table,
                TableMentionKind::Aggregate(AggregationKind::Sum),
                cells,
            );
            if rng.random_bool(cfg.attr_hint_rate) {
                b.push(" was recorded for ");
                b.push(&g.attrs[col]);
            }
            if cued {
                b.push(" overall");
            }
            b.push(". ");
        }
        MentionPlan::Diff {
            table,
            row,
            col_a,
            col_b,
        } => {
            let g = &tables[table];
            let d = (g.values[row][col_a] - g.values[row][col_b]).abs();
            let style = pick_style(d, rng);
            let (surface, approx) = render_mention(d, style, &format!("{d}"));
            let kind = g.kinds[col_a];
            let (prefix, suffix) = decorations(kind, domain, rng.random_bool(cfg.unit_rate));
            if rng.random_bool(cfg.entity_hint_rate) {
                b.push(&capitalize(&g.entities[row]));
            } else {
                b.push("The result");
            }
            b.push(" was up ");
            if approx && rng.random_bool(cfg.approx_cue_rate) {
                b.push(APPROX_CUES[rng.random_range(0..APPROX_CUES.len())]);
            }
            b.push_mention(
                &format!("{prefix}{surface}{suffix}"),
                table,
                TableMentionKind::Aggregate(AggregationKind::Difference),
                vec![g.grid_pos(row, col_a), g.grid_pos(row, col_b)],
            );
            b.push(" compared with ");
            b.push(&g.attrs[col_b]);
            b.push(". ");
        }
        MentionPlan::Percent {
            table,
            col,
            row_num,
            row_den,
        } => {
            let g = &tables[table];
            let pct = g.values[row_num][col] / g.values[row_den][col] * 100.0;
            let surface = fmt_pct(pct);
            if rng.random_bool(cfg.entity_hint_rate) {
                b.push(&capitalize(&g.entities[row_num]));
            } else {
                b.push("That group");
            }
            b.push(" accounted for a share of ");
            b.push_mention(
                &format!("{surface}%"),
                table,
                TableMentionKind::Aggregate(AggregationKind::Percentage),
                vec![g.grid_pos(row_num, col), g.grid_pos(row_den, col)],
            );
            b.push(" of ");
            b.push(&g.entities[row_den]);
            if rng.random_bool(cfg.attr_hint_rate) {
                b.push(" in ");
                b.push(&g.attrs[col]);
            }
            b.push(". ");
        }
        MentionPlan::Ratio {
            table,
            row,
            col_new,
            col_old,
        } => {
            let g = &tables[table];
            let (vn, vo) = (g.values[row][col_new], g.values[row][col_old]);
            if vn == 0.0 {
                return;
            }
            let ratio = ((vn - vo) / vn * 100.0).abs();
            let surface = fmt_pct(ratio);
            if rng.random_bool(cfg.entity_hint_rate) {
                b.push(&capitalize(&g.entities[row]));
            } else {
                b.push("The figure");
            }
            b.push(" increased by ");
            b.push_mention(
                &format!("{surface}%"),
                table,
                TableMentionKind::Aggregate(AggregationKind::ChangeRatio),
                vec![g.grid_pos(row, col_new), g.grid_pos(row, col_old)],
            );
            b.push(" compared with ");
            b.push(&g.attrs[col_old]);
            b.push(". ");
        }
        MentionPlan::Ranking {
            table,
            col,
            maximum,
        } => {
            let g = &tables[table];
            let values: Vec<f64> = (0..g.n_rows()).map(|r| g.values[r][col]).collect();
            let v = if maximum {
                values.iter().copied().fold(f64::NEG_INFINITY, f64::max)
            } else {
                values.iter().copied().fold(f64::INFINITY, f64::min)
            };
            let cells: Vec<(usize, usize)> = (0..g.n_rows()).map(|r| g.grid_pos(r, col)).collect();
            let (surface, _) = render_mention(v, MentionStyle::Plain, &format!("{v}"));
            b.push(if maximum {
                "The highest figure"
            } else {
                "The lowest figure"
            });
            if rng.random_bool(cfg.attr_hint_rate) {
                b.push(" in ");
                b.push(&g.attrs[col]);
            }
            b.push(" was ");
            let kind = g.kinds[col];
            let (prefix, suffix) = decorations(kind, domain, rng.random_bool(cfg.unit_rate));
            b.push_mention(
                &format!("{prefix}{surface}{suffix}"),
                table,
                TableMentionKind::Aggregate(if maximum {
                    AggregationKind::Max
                } else {
                    AggregationKind::Min
                }),
                cells,
            );
            b.push(". ");
        }
        MentionPlan::Distractor => {
            // A quantity referring to nothing in the tables.
            let v = rng.random_range(3..800);
            let templates = [
                format!("The briefing lasted {v} minutes"),
                format!("The venue seats {v} visitors"),
                format!("Registration costs {v} dollars at the door"),
            ];
            let t = &templates[rng.random_range(0..templates.len())];
            b.push_plain_number(t);
            b.push(". ");
        }
    }
}

/// Unit decorations around a mention surface.
fn decorations(kind: ColumnKind, domain: Domain, with_unit: bool) -> (String, String) {
    if !with_unit {
        return (String::new(), String::new());
    }
    match kind {
        ColumnKind::Money => ("$".to_string(), String::new()),
        ColumnKind::Percent => (String::new(), "%".to_string()),
        ColumnKind::Rating => (String::new(), String::new()),
        _ => (String::new(), format!(" {}", domain.count_noun())),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tablegen::{generate_table, TableGenConfig};
    use briq_text::extract_quantities;
    use rand::rngs::StdRng;

    fn setup(seed: u64) -> (GeneratedTable, StdRng) {
        let mut rng = StdRng::seed_from_u64(seed);
        let g = generate_table(
            Domain::Health,
            &TableGenConfig {
                caption_scale_rate: 0.0,
                collision_rate: 0.0,
                ..Default::default()
            },
            &mut rng,
        );
        (g, rng)
    }

    #[test]
    fn gold_spans_cover_real_quantities() {
        let (g, mut rng) = setup(3);
        let plans = vec![
            MentionPlan::Single {
                table: 0,
                row: 0,
                col: 0,
            },
            MentionPlan::Sum { table: 0, col: 0 },
            MentionPlan::Distractor,
        ];
        let (text, gold) = render_document(
            Domain::Health,
            &[g],
            &plans,
            &TextGenConfig::default(),
            &mut rng,
        );
        assert_eq!(gold.len(), 2); // distractor records no gold
        let mentions = extract_quantities(&text);
        for ga in &gold {
            let covered = mentions
                .iter()
                .any(|m| m.start < ga.mention_end && ga.mention_start < m.end);
            assert!(covered, "gold span {:?} not extracted from {text:?}", ga);
        }
    }

    #[test]
    fn sum_gold_covers_whole_column() {
        let (g, mut rng) = setup(4);
        let n = g.n_rows();
        let plans = vec![MentionPlan::Sum { table: 0, col: 1 }];
        let (_, gold) = render_document(
            Domain::Health,
            &[g],
            &plans,
            &TextGenConfig::default(),
            &mut rng,
        );
        assert_eq!(gold[0].cells.len(), n);
        assert_eq!(
            gold[0].kind,
            TableMentionKind::Aggregate(AggregationKind::Sum)
        );
    }

    #[test]
    fn pair_aggregates_have_two_cells() {
        let (g, mut rng) = setup(5);
        let plans = vec![
            MentionPlan::Diff {
                table: 0,
                row: 0,
                col_a: 0,
                col_b: 1,
            },
            MentionPlan::Percent {
                table: 0,
                col: 0,
                row_num: 0,
                row_den: 1,
            },
            MentionPlan::Ratio {
                table: 0,
                row: 0,
                col_new: 0,
                col_old: 1,
            },
        ];
        let (text, gold) = render_document(
            Domain::Health,
            &[g],
            &plans,
            &TextGenConfig::default(),
            &mut rng,
        );
        assert_eq!(gold.len(), 3, "{text:?}");
        for ga in &gold {
            assert_eq!(ga.cells.len(), 2);
        }
        assert_eq!(
            gold[0].kind,
            TableMentionKind::Aggregate(AggregationKind::Difference)
        );
        assert_eq!(
            gold[1].kind,
            TableMentionKind::Aggregate(AggregationKind::Percentage)
        );
        assert_eq!(
            gold[2].kind,
            TableMentionKind::Aggregate(AggregationKind::ChangeRatio)
        );
    }

    #[test]
    fn spans_match_text_slices() {
        let (g, mut rng) = setup(6);
        let plans = vec![
            MentionPlan::Single {
                table: 0,
                row: 1,
                col: 1,
            },
            MentionPlan::Sum { table: 0, col: 1 },
        ];
        let (text, gold) = render_document(
            Domain::Health,
            &[g],
            &plans,
            &TextGenConfig::default(),
            &mut rng,
        );
        for ga in &gold {
            let slice = &text[ga.mention_start..ga.mention_end];
            assert!(
                slice.chars().any(|c| c.is_ascii_digit()),
                "span {slice:?} should contain digits"
            );
        }
    }

    #[test]
    fn cue_words_present_for_aggregates() {
        let (g, mut rng) = setup(7);
        let (text, _) = render_document(
            Domain::Health,
            std::slice::from_ref(&g),
            &[MentionPlan::Sum { table: 0, col: 0 }],
            &TextGenConfig::default(),
            &mut rng,
        );
        assert!(text.to_lowercase().contains("total"), "{text:?}");
        let (text, _) = render_document(
            Domain::Health,
            &[g],
            &[MentionPlan::Ratio {
                table: 0,
                row: 0,
                col_new: 0,
                col_old: 1,
            }],
            &TextGenConfig::default(),
            &mut rng,
        );
        assert!(text.contains("increased by"), "{text:?}");
    }

    #[test]
    fn deterministic_given_seed() {
        let (g1, mut r1) = setup(8);
        let (g2, mut r2) = setup(8);
        let plans = vec![MentionPlan::Single {
            table: 0,
            row: 0,
            col: 0,
        }];
        let a = render_document(
            Domain::Health,
            &[g1],
            &plans,
            &TextGenConfig::default(),
            &mut r1,
        );
        let b = render_document(
            Domain::Health,
            &[g2],
            &plans,
            &TextGenConfig::default(),
            &mut r2,
        );
        assert_eq!(a.0, b.0);
    }
}
