//! Mention perturbation for the robustness experiments of Table II.
//!
//! * **Truncated** — "we removed the least significant digit of each
//!   original text mention. For example, 6746, 2.74, 0.19 became 6740,
//!   2.7, and 0.1."
//! * **Rounded** — "we numerically rounded the least significant digit
//!   … 6746, 2.74, 0.19 became 6750, 2.7, and 0.2."
//!
//! Only the *text* is perturbed; tables stay intact. Gold spans are
//! re-mapped through the edits.

use briq_core::training::LabeledDocument;
use briq_text::extract_quantities;

/// Which variant of the text to produce.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Perturbation {
    /// The text as generated.
    Original,
    /// Least significant digit truncated.
    Truncated,
    /// Least significant digit rounded.
    Rounded,
}

impl Perturbation {
    /// All three variants in the paper's order.
    pub const ALL: [Perturbation; 3] =
        [Perturbation::Original, Perturbation::Truncated, Perturbation::Rounded];

    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            Perturbation::Original => "original",
            Perturbation::Truncated => "truncated",
            Perturbation::Rounded => "rounded",
        }
    }
}

/// Transform one numeral surface (Western format: `.` decimal, `,`
/// grouping). Returns `None` when the numeral is a single digit (nothing
/// to remove).
pub fn perturb_numeral(s: &str, p: Perturbation) -> Option<String> {
    if p == Perturbation::Original {
        return Some(s.to_string());
    }
    let digits = s.chars().filter(|c| c.is_ascii_digit()).count();
    if digits <= 1 {
        return None;
    }
    if let Some(dot) = s.rfind('.') {
        let frac = &s[dot + 1..];
        if !frac.is_empty() && frac.chars().all(|c| c.is_ascii_digit()) {
            // decimal: drop (or round away) the last fractional digit
            let value: f64 = s.replace(',', "").parse().ok()?;
            let new_prec = frac.len() - 1;
            let factor = 10f64.powi(new_prec as i32);
            let adjusted = match p {
                Perturbation::Truncated => (value * factor).trunc() / factor,
                Perturbation::Rounded => (value * factor).round() / factor,
                Perturbation::Original => unreachable!(),
            };
            return Some(if new_prec == 0 {
                format!("{}", adjusted as i64)
            } else {
                format!("{adjusted:.new_prec$}")
            });
        }
    }
    // integer: zero (or round) the ones digit, preserving grouping style
    let grouped = s.contains(',');
    let value: i64 = s.replace(',', "").parse().ok()?;
    let adjusted = match p {
        Perturbation::Truncated => (value / 10) * 10,
        Perturbation::Rounded => ((value as f64 / 10.0).round() as i64) * 10,
        Perturbation::Original => unreachable!(),
    };
    Some(if grouped { crate::numbers::group_thousands(adjusted) } else { adjusted.to_string() })
}

/// Locate the numeral core inside a mention's span of `text`: the maximal
/// run of digits/grouping/decimal marks starting at the first digit.
fn numeral_range(text: &str, start: usize, end: usize) -> Option<(usize, usize)> {
    let span = &text[start..end];
    let first = span.find(|c: char| c.is_ascii_digit())?;
    let rest = &span[first..];
    let mut len = 0;
    let bytes = rest.as_bytes();
    while len < bytes.len() {
        let c = bytes[len] as char;
        if c.is_ascii_digit() {
            len += 1;
        } else if (c == ',' || c == '.')
            && len + 1 < bytes.len()
            && (bytes[len + 1] as char).is_ascii_digit()
        {
            len += 2;
        } else {
            break;
        }
    }
    Some((start + first, start + first + len))
}

/// Produce the perturbed variant of a labeled document. All extracted
/// text-mention numerals are transformed; gold spans are re-mapped.
pub fn perturb_document(ld: &LabeledDocument, p: Perturbation) -> LabeledDocument {
    if p == Perturbation::Original {
        return ld.clone();
    }
    let text = &ld.document.text;
    let mentions = extract_quantities(text);

    // Build the edit list (start, end, replacement).
    let mut edits: Vec<(usize, usize, String)> = Vec::new();
    for m in &mentions {
        if let Some((ns, ne)) = numeral_range(text, m.start, m.end) {
            if let Some(new) = perturb_numeral(&text[ns..ne], p) {
                if new != text[ns..ne] {
                    edits.push((ns, ne, new));
                }
            }
        }
    }
    edits.sort_by_key(|&(s, _, _)| s);

    // Apply edits and remap gold offsets through them.
    let mut out = String::with_capacity(text.len());
    let mut last = 0usize;
    for &(s, e, ref rep) in &edits {
        out.push_str(&text[last..s]);
        out.push_str(rep);
        last = e;
    }
    out.push_str(&text[last..]);

    let map = |p: usize| -> usize {
        let mut delta: i64 = 0;
        for &(s, e, ref rep) in &edits {
            if e <= p {
                delta += rep.len() as i64 - (e - s) as i64;
            } else if s < p {
                // inside the edited range: clamp into the replacement
                let off = (p - s).min(rep.len());
                return (s as i64 + delta) as usize + off;
            } else {
                break;
            }
        }
        (p as i64 + delta) as usize
    };
    let mut gold = ld.gold.clone();
    for g in &mut gold {
        g.mention_start = map(g.mention_start);
        g.mention_end = map(g.mention_end).max(g.mention_start + 1).min(out.len());
    }

    let mut doc = ld.document.clone();
    doc.text = out;
    LabeledDocument { document: doc, gold }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::corpus::{generate_corpus, CorpusConfig};

    #[test]
    fn paper_examples_truncated() {
        assert_eq!(perturb_numeral("6746", Perturbation::Truncated).unwrap(), "6740");
        assert_eq!(perturb_numeral("2.74", Perturbation::Truncated).unwrap(), "2.7");
        assert_eq!(perturb_numeral("0.19", Perturbation::Truncated).unwrap(), "0.1");
    }

    #[test]
    fn paper_examples_rounded() {
        assert_eq!(perturb_numeral("6746", Perturbation::Rounded).unwrap(), "6750");
        assert_eq!(perturb_numeral("2.74", Perturbation::Rounded).unwrap(), "2.7");
        assert_eq!(perturb_numeral("0.19", Perturbation::Rounded).unwrap(), "0.2");
    }

    #[test]
    fn grouping_preserved() {
        assert_eq!(perturb_numeral("3,263", Perturbation::Truncated).unwrap(), "3,260");
        assert_eq!(perturb_numeral("3,267", Perturbation::Rounded).unwrap(), "3,270");
    }

    #[test]
    fn single_digits_untouched() {
        assert_eq!(perturb_numeral("5", Perturbation::Truncated), None);
        assert_eq!(perturb_numeral("5", Perturbation::Rounded), None);
    }

    #[test]
    fn decimal_collapse_to_integer() {
        assert_eq!(perturb_numeral("1.5", Perturbation::Truncated).unwrap(), "1");
        assert_eq!(perturb_numeral("1.5", Perturbation::Rounded).unwrap(), "2");
    }

    #[test]
    fn original_is_identity() {
        let c = generate_corpus(&CorpusConfig::small(9));
        let ld = &c.documents[0];
        let same = perturb_document(ld, Perturbation::Original);
        assert_eq!(same.document.text, ld.document.text);
        assert_eq!(same.gold, ld.gold);
    }

    #[test]
    fn perturbed_gold_spans_still_cover_numbers() {
        let c = generate_corpus(&CorpusConfig::small(10));
        for p in [Perturbation::Truncated, Perturbation::Rounded] {
            for ld in &c.documents {
                let out = perturb_document(ld, p);
                assert_eq!(out.gold.len(), ld.gold.len());
                for g in &out.gold {
                    assert!(g.mention_end <= out.document.text.len());
                    let slice = &out.document.text[g.mention_start..g.mention_end];
                    assert!(
                        slice.chars().any(|ch| ch.is_ascii_digit()),
                        "{p:?}: gold slice {slice:?} lost its number"
                    );
                }
            }
        }
    }

    #[test]
    fn tables_unchanged() {
        let c = generate_corpus(&CorpusConfig::small(11));
        let ld = &c.documents[0];
        let out = perturb_document(ld, Perturbation::Truncated);
        assert_eq!(out.document.tables, ld.document.tables);
    }

    #[test]
    fn truncation_changes_most_multidigit_numbers() {
        let c = generate_corpus(&CorpusConfig::small(12));
        let mut changed = 0;
        let mut total = 0;
        for ld in &c.documents {
            let out = perturb_document(ld, Perturbation::Truncated);
            total += 1;
            if out.document.text != ld.document.text {
                changed += 1;
            }
        }
        assert!(changed * 10 >= total * 7, "only {changed}/{total} documents changed");
    }
}
