//! Mention perturbation for the robustness experiments of Table II, plus
//! the adversarial page generator behind the chaos harness.
//!
//! The paper's perturbations:
//!
//! * **Truncated** — "we removed the least significant digit of each
//!   original text mention. For example, 6746, 2.74, 0.19 became 6740,
//!   2.7, and 0.1."
//! * **Rounded** — "we numerically rounded the least significant digit
//!   … 6746, 2.74, 0.19 became 6750, 2.7, and 0.2."
//!
//! Only the *text* is perturbed; tables stay intact. Gold spans are
//! re-mapped through the edits.
//!
//! The adversarial generator ([`Adversary`], [`adversarial_page`])
//! produces pages no honest corpus would: truncated and unbalanced
//! markup, colspan bombs, zero-row tables, `1e999`/NaN-shaped numerics,
//! mixed-locale digit groupings, dense tables with huge virtual-cell
//! fanout, and regex-hostile strings. They exist to be fed through
//! `Briq::align_checked`, which must degrade — never panic or hang.

use briq_core::training::LabeledDocument;
use briq_table::html::parse_page;
use briq_table::segment::{segment_page, SegmentConfig};
use briq_table::Document;
use briq_text::extract_quantities;
use rand::prelude::*;
use rand::rngs::StdRng;

/// Which variant of the text to produce.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Perturbation {
    /// The text as generated.
    Original,
    /// Least significant digit truncated.
    Truncated,
    /// Least significant digit rounded.
    Rounded,
}

impl Perturbation {
    /// All three variants in the paper's order.
    pub const ALL: [Perturbation; 3] = [
        Perturbation::Original,
        Perturbation::Truncated,
        Perturbation::Rounded,
    ];

    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            Perturbation::Original => "original",
            Perturbation::Truncated => "truncated",
            Perturbation::Rounded => "rounded",
        }
    }
}

/// Transform one numeral surface (Western format: `.` decimal, `,`
/// grouping). Returns `None` when the numeral is a single digit (nothing
/// to remove).
pub fn perturb_numeral(s: &str, p: Perturbation) -> Option<String> {
    if p == Perturbation::Original {
        return Some(s.to_string());
    }
    let digits = s.chars().filter(|c| c.is_ascii_digit()).count();
    if digits <= 1 {
        return None;
    }
    if let Some(dot) = s.rfind('.') {
        let frac = &s[dot + 1..];
        if !frac.is_empty() && frac.chars().all(|c| c.is_ascii_digit()) {
            // decimal: drop (or round away) the last fractional digit
            let value: f64 = s.replace(',', "").parse().ok()?;
            let new_prec = frac.len() - 1;
            let factor = 10f64.powi(new_prec as i32);
            let adjusted = match p {
                Perturbation::Truncated => (value * factor).trunc() / factor,
                Perturbation::Rounded => (value * factor).round() / factor,
                Perturbation::Original => unreachable!(),
            };
            return Some(if new_prec == 0 {
                format!("{}", adjusted as i64)
            } else {
                format!("{adjusted:.new_prec$}")
            });
        }
    }
    // integer: zero (or round) the ones digit, preserving grouping style
    let grouped = s.contains(',');
    let value: i64 = s.replace(',', "").parse().ok()?;
    let adjusted = match p {
        Perturbation::Truncated => (value / 10) * 10,
        Perturbation::Rounded => ((value as f64 / 10.0).round() as i64) * 10,
        Perturbation::Original => unreachable!(),
    };
    Some(if grouped {
        crate::numbers::group_thousands(adjusted)
    } else {
        adjusted.to_string()
    })
}

/// Locate the numeral core inside a mention's span of `text`: the maximal
/// run of digits/grouping/decimal marks starting at the first digit.
fn numeral_range(text: &str, start: usize, end: usize) -> Option<(usize, usize)> {
    let span = &text[start..end];
    let first = span.find(|c: char| c.is_ascii_digit())?;
    let rest = &span[first..];
    let mut len = 0;
    let bytes = rest.as_bytes();
    while len < bytes.len() {
        let c = bytes[len] as char;
        if c.is_ascii_digit() {
            len += 1;
        } else if (c == ',' || c == '.')
            && len + 1 < bytes.len()
            && (bytes[len + 1] as char).is_ascii_digit()
        {
            len += 2;
        } else {
            break;
        }
    }
    Some((start + first, start + first + len))
}

/// Produce the perturbed variant of a labeled document. All extracted
/// text-mention numerals are transformed; gold spans are re-mapped.
pub fn perturb_document(ld: &LabeledDocument, p: Perturbation) -> LabeledDocument {
    if p == Perturbation::Original {
        return ld.clone();
    }
    let text = &ld.document.text;
    let mentions = extract_quantities(text);

    // Build the edit list (start, end, replacement).
    let mut edits: Vec<(usize, usize, String)> = Vec::new();
    for m in &mentions {
        if let Some((ns, ne)) = numeral_range(text, m.start, m.end) {
            if let Some(new) = perturb_numeral(&text[ns..ne], p) {
                if new != text[ns..ne] {
                    edits.push((ns, ne, new));
                }
            }
        }
    }
    edits.sort_by_key(|&(s, _, _)| s);

    // Apply edits and remap gold offsets through them.
    let mut out = String::with_capacity(text.len());
    let mut last = 0usize;
    for &(s, e, ref rep) in &edits {
        out.push_str(&text[last..s]);
        out.push_str(rep);
        last = e;
    }
    out.push_str(&text[last..]);

    let map = |p: usize| -> usize {
        let mut delta: i64 = 0;
        for &(s, e, ref rep) in &edits {
            if e <= p {
                delta += rep.len() as i64 - (e - s) as i64;
            } else if s < p {
                // inside the edited range: clamp into the replacement
                let off = (p - s).min(rep.len());
                return (s as i64 + delta) as usize + off;
            } else {
                break;
            }
        }
        (p as i64 + delta) as usize
    };
    let mut gold = ld.gold.clone();
    for g in &mut gold {
        g.mention_start = map(g.mention_start);
        g.mention_end = map(g.mention_end).max(g.mention_start + 1).min(out.len());
    }

    let mut doc = ld.document.clone();
    doc.text = out;
    LabeledDocument {
        document: doc,
        gold,
    }
}

/// One family of adversarial page, each targeting a different pipeline
/// weakness.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Adversary {
    /// The page ends mid-tag / mid-comment.
    TruncatedHtml,
    /// Open tags that never close, closes that never opened, tables
    /// nested inside cells.
    UnbalancedTags,
    /// A row whose colspan attributes claim thousands of columns.
    ColspanBomb,
    /// Tables with no data rows, no columns, or headers only.
    ZeroRowTable,
    /// `1e999`, `-1e999`, `NaN`-shaped and overlong numerals that
    /// overflow `f64` parsing.
    NonFiniteNumerics,
    /// European and US digit groupings mixed in one page
    /// (`1.234.567,89` next to `1,234,567.89`).
    MixedLocale,
    /// A dense all-numeric table whose virtual-cell space is quadratic
    /// in both dimensions.
    VirtualCellFanout,
    /// Pathological strings for the regex/tokenizer layer: nested
    /// parens, long punctuation runs, currency soup.
    RegexHostile,
}

impl Adversary {
    /// Every family, for round-robin generation.
    pub const ALL: [Adversary; 8] = [
        Adversary::TruncatedHtml,
        Adversary::UnbalancedTags,
        Adversary::ColspanBomb,
        Adversary::ZeroRowTable,
        Adversary::NonFiniteNumerics,
        Adversary::MixedLocale,
        Adversary::VirtualCellFanout,
        Adversary::RegexHostile,
    ];

    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            Adversary::TruncatedHtml => "truncated-html",
            Adversary::UnbalancedTags => "unbalanced-tags",
            Adversary::ColspanBomb => "colspan-bomb",
            Adversary::ZeroRowTable => "zero-row-table",
            Adversary::NonFiniteNumerics => "non-finite-numerics",
            Adversary::MixedLocale => "mixed-locale",
            Adversary::VirtualCellFanout => "virtual-cell-fanout",
            Adversary::RegexHostile => "regex-hostile",
        }
    }
}

/// A paragraph of quantity-bearing prose to anchor the page.
fn adversarial_paragraph(rng: &mut StdRng) -> String {
    let n1 = rng.random_range(2..9999);
    let n2 = rng.random_range(2..9999);
    format!(
        "<p>A total of {n1} patients reported side effects; the most common \
         was reported by {n2} patients, about 12.5 percent of the cohort.</p>"
    )
}

/// A small well-formed numeric table.
fn small_table(rng: &mut StdRng) -> String {
    let a = rng.random_range(1..500);
    let b = rng.random_range(1..500);
    format!(
        "<table><tr><th>effect</th><th>total</th></tr>\
         <tr><td>Rash</td><td>{a}</td></tr>\
         <tr><td>Depression</td><td>{b}</td></tr></table>"
    )
}

/// Generate one adversarial HTML page of the given family. Fully
/// deterministic in `seed`.
pub fn adversarial_page(kind: Adversary, seed: u64) -> String {
    let rng = &mut StdRng::seed_from_u64(seed ^ 0x5eed_ad5e);
    let mut page = String::from("<html><body>");
    page.push_str(&adversarial_paragraph(rng));
    match kind {
        Adversary::TruncatedHtml => {
            page.push_str(&small_table(rng));
            // Cut the page mid-structure: mid-tag, mid-comment, or
            // mid-cell, at a char boundary.
            let tail = match rng.random_range(0..3) {
                0 => "<table><tr><td>17</td><td",
                1 => "<table><tr><td>17</td></tr><!-- unterminated ",
                _ => "<table><tr><th>x</th></tr><tr><td>4",
            };
            page.push_str(tail);
            return page; // no closing tags at all
        }
        Adversary::UnbalancedTags => {
            page.push_str("<table><tr><td>5<table><tr><td>6</td></table>");
            page.push_str("</div></td></tr></p>");
            page.push_str("<tr><td>7</td></tr></table></table></tr>");
            page.push_str(&small_table(rng));
        }
        Adversary::ColspanBomb => {
            let span = rng.random_range(1_000..60_000);
            page.push_str(&format!(
                "<table><tr><th colspan=\"{span}\">wide</th></tr>\
                 <tr><td colspan=\"{span}\">9</td></tr>\
                 <tr><td>1</td><td>2</td></tr></table>"
            ));
        }
        Adversary::ZeroRowTable => {
            page.push_str("<table></table>");
            page.push_str("<table><tr></tr><tr></tr></table>");
            page.push_str("<table><tr><th>only</th><th>headers</th></tr></table>");
            page.push_str(&small_table(rng));
        }
        Adversary::NonFiniteNumerics => {
            let long_digits = "9".repeat(rng.random_range(310..400));
            page.push_str(&format!(
                "<p>Costs rose to 1e999 dollars, then to -1e999, NaN, \
                 Infinity, 0x1.fp3, and finally {long_digits}.</p>\
                 <table><tr><th>k</th><th>v</th></tr>\
                 <tr><td>a</td><td>1e999</td></tr>\
                 <tr><td>b</td><td>{long_digits}</td></tr>\
                 <tr><td>c</td><td>NaN</td></tr></table>"
            ));
        }
        Adversary::MixedLocale => {
            page.push_str(
                "<p>Revenue was 1.234.567,89 euro against 1,234,567.89 dollars, \
                 with 12.345 units sold and 1,23,45,678 rupees booked.</p>",
            );
            page.push_str(
                "<table><tr><th>region</th><th>amount</th></tr>\
                 <tr><td>EU</td><td>1.234.567,89</td></tr>\
                 <tr><td>US</td><td>1,234,567.89</td></tr>\
                 <tr><td>IN</td><td>1,23,45,678</td></tr></table>",
            );
        }
        Adversary::VirtualCellFanout => {
            let rows = rng.random_range(10..16);
            let cols = rng.random_range(10..16);
            // Cell (r, c) holds (r+1)*(c+7), so 70 = cell (9, 0) always
            // exists; naming it (and two headers) keeps the paragraph
            // related to the table under segmentation's overlap test.
            page.push_str(
                "<p>The c0 and c1 series both peaked near 70 across the \
                 whole measurement campaign.</p>",
            );
            page.push_str("<table><tr>");
            for c in 0..cols {
                page.push_str(&format!("<th>c{c}</th>"));
            }
            page.push_str("</tr>");
            for r in 0..rows {
                page.push_str("<tr>");
                for c in 0..cols {
                    page.push_str(&format!("<td>{}</td>", (r + 1) * (c + 7)));
                }
                page.push_str("</tr>");
            }
            page.push_str("</table>");
        }
        Adversary::RegexHostile => {
            let depth = rng.random_range(50..200);
            let parens = "(".repeat(depth) + "42" + &")".repeat(depth);
            let aaaa = "a".repeat(rng.random_range(200..500));
            page.push_str(&format!(
                "<p>{parens} +++$$$€€€%%% {aaaa}! 1,,2,,3 ..5.. -–−7 and \
                 $ € ¥ £ 12$34€56 follow.</p>"
            ));
            page.push_str(&small_table(rng));
        }
    }
    page.push_str("</body></html>");
    page
}

/// Parse an adversarial page into documents, exactly as the CLI would.
/// May legitimately be empty (e.g. a page truncated before any table
/// survived).
pub fn adversarial_documents(kind: Adversary, seed: u64) -> Vec<Document> {
    let html = adversarial_page(kind, seed);
    let page = parse_page(&html);
    segment_page(&page, &SegmentConfig::default(), seed as usize)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::corpus::{generate_corpus, CorpusConfig};

    #[test]
    fn paper_examples_truncated() {
        assert_eq!(
            perturb_numeral("6746", Perturbation::Truncated).unwrap(),
            "6740"
        );
        assert_eq!(
            perturb_numeral("2.74", Perturbation::Truncated).unwrap(),
            "2.7"
        );
        assert_eq!(
            perturb_numeral("0.19", Perturbation::Truncated).unwrap(),
            "0.1"
        );
    }

    #[test]
    fn paper_examples_rounded() {
        assert_eq!(
            perturb_numeral("6746", Perturbation::Rounded).unwrap(),
            "6750"
        );
        assert_eq!(
            perturb_numeral("2.74", Perturbation::Rounded).unwrap(),
            "2.7"
        );
        assert_eq!(
            perturb_numeral("0.19", Perturbation::Rounded).unwrap(),
            "0.2"
        );
    }

    #[test]
    fn grouping_preserved() {
        assert_eq!(
            perturb_numeral("3,263", Perturbation::Truncated).unwrap(),
            "3,260"
        );
        assert_eq!(
            perturb_numeral("3,267", Perturbation::Rounded).unwrap(),
            "3,270"
        );
    }

    #[test]
    fn single_digits_untouched() {
        assert_eq!(perturb_numeral("5", Perturbation::Truncated), None);
        assert_eq!(perturb_numeral("5", Perturbation::Rounded), None);
    }

    #[test]
    fn decimal_collapse_to_integer() {
        assert_eq!(
            perturb_numeral("1.5", Perturbation::Truncated).unwrap(),
            "1"
        );
        assert_eq!(perturb_numeral("1.5", Perturbation::Rounded).unwrap(), "2");
    }

    #[test]
    fn original_is_identity() {
        let c = generate_corpus(&CorpusConfig::small(9));
        let ld = &c.documents[0];
        let same = perturb_document(ld, Perturbation::Original);
        assert_eq!(same.document.text, ld.document.text);
        assert_eq!(same.gold, ld.gold);
    }

    #[test]
    fn perturbed_gold_spans_still_cover_numbers() {
        let c = generate_corpus(&CorpusConfig::small(10));
        for p in [Perturbation::Truncated, Perturbation::Rounded] {
            for ld in &c.documents {
                let out = perturb_document(ld, p);
                assert_eq!(out.gold.len(), ld.gold.len());
                for g in &out.gold {
                    assert!(g.mention_end <= out.document.text.len());
                    let slice = &out.document.text[g.mention_start..g.mention_end];
                    assert!(
                        slice.chars().any(|ch| ch.is_ascii_digit()),
                        "{p:?}: gold slice {slice:?} lost its number"
                    );
                }
            }
        }
    }

    #[test]
    fn tables_unchanged() {
        let c = generate_corpus(&CorpusConfig::small(11));
        let ld = &c.documents[0];
        let out = perturb_document(ld, Perturbation::Truncated);
        assert_eq!(out.document.tables, ld.document.tables);
    }

    #[test]
    fn adversarial_pages_are_deterministic() {
        for kind in Adversary::ALL {
            assert_eq!(
                adversarial_page(kind, 7),
                adversarial_page(kind, 7),
                "{kind:?}"
            );
            // Different seeds should (for the randomized families) be
            // able to differ; at minimum they must not panic.
            let _ = adversarial_page(kind, 8);
        }
    }

    #[test]
    fn adversarial_pages_parse_without_panicking() {
        for kind in Adversary::ALL {
            for seed in 0..20 {
                let docs = adversarial_documents(kind, seed);
                for d in &docs {
                    assert!(d.text.len() < 1 << 20, "{kind:?} text exploded");
                }
            }
        }
    }

    #[test]
    fn fanout_family_generates_dense_tables() {
        let docs = adversarial_documents(Adversary::VirtualCellFanout, 3);
        let table = docs
            .iter()
            .flat_map(|d| d.tables.iter())
            .max_by_key(|t| t.quantity_count())
            .expect("fanout page has a table");
        assert!(table.quantity_count() >= 100, "{}", table.quantity_count());
    }

    #[test]
    fn truncation_changes_most_multidigit_numbers() {
        let c = generate_corpus(&CorpusConfig::small(12));
        let mut changed = 0;
        let mut total = 0;
        for ld in &c.documents {
            let out = perturb_document(ld, Perturbation::Truncated);
            total += 1;
            if out.document.text != ld.document.text {
                changed += 1;
            }
        }
        assert!(
            changed * 10 >= total * 7,
            "only {changed}/{total} documents changed"
        );
    }
}
