//! Thematic domains and their vocabularies.
//!
//! The tableL corpus "mostly falls under five major topics: finance,
//! environment, health, politics, and sports" (§VII-A), plus "others".
//! Table IX fixes each domain's average table shape; the vocabularies
//! below drive entity/attribute naming so context features have real
//! signal to work with.

use briq_text::units::{Currency, Unit};

/// Corpus domain.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Domain {
    /// Quarterly reports, revenues, margins.
    Finance,
    /// Cars, emissions, energy.
    Environment,
    /// Clinical trials, side effects.
    Health,
    /// Census, election statistics.
    Politics,
    /// Season statistics, match results.
    Sports,
    /// Miscellaneous product/price pages.
    Others,
}

impl Domain {
    /// All six domains, in the paper's reporting order (Table VIII).
    pub const ALL: [Domain; 6] = [
        Domain::Environment,
        Domain::Finance,
        Domain::Health,
        Domain::Politics,
        Domain::Sports,
        Domain::Others,
    ];

    /// Display name matching the paper's tables.
    pub fn name(self) -> &'static str {
        match self {
            Domain::Environment => "environment",
            Domain::Finance => "finance",
            Domain::Health => "health",
            Domain::Politics => "politics",
            Domain::Sports => "sports",
            Domain::Others => "others",
        }
    }

    /// Target data-table shape `(rows, cols)`, following Table IX.
    pub fn table_shape(self) -> (usize, usize) {
        match self {
            Domain::Environment => (7, 4),
            Domain::Finance => (7, 4),
            Domain::Health => (3, 2),
            Domain::Politics => (8, 3),
            Domain::Sports => (8, 6),
            Domain::Others => (7, 4),
        }
    }

    /// Row-entity vocabulary (row header values).
    pub fn entities(self) -> &'static [&'static str] {
        match self {
            Domain::Finance => &[
                "Total Revenue",
                "Gross Income",
                "Net Income",
                "Operating Costs",
                "Income Taxes",
                "Segment Profit",
                "Segment Margin",
                "Cash Flow",
                "Dividends",
                "Share Buybacks",
                "Interest Expense",
                "R&D Spending",
            ],
            Domain::Environment => &[
                "Focus Electric",
                "A3 e-tron",
                "VW Golf",
                "Model 3",
                "Leaf",
                "Prius Prime",
                "Ioniq",
                "Bolt",
                "Kona Electric",
                "Zoe",
                "i3",
                "e-Golf",
            ],
            Domain::Health => &[
                "Rash",
                "Depression",
                "Hypertension",
                "Nausea",
                "Eye Disorders",
                "Headache",
                "Fatigue",
                "Insomnia",
                "Dizziness",
                "Anxiety",
            ],
            Domain::Politics => &[
                "Northern District",
                "Southern District",
                "Eastern District",
                "Western District",
                "Central Ward",
                "Harbour Ward",
                "Riverside Precinct",
                "Hillside Precinct",
                "Old Town",
                "New Town",
                "Lakeside",
                "Greenfield",
            ],
            Domain::Sports => &[
                "United",
                "Rovers",
                "Athletic",
                "Wanderers",
                "City",
                "Rangers",
                "Albion",
                "County",
                "Town",
                "Harriers",
                "Dynamos",
                "Corinthians",
            ],
            Domain::Others => &[
                "Making Cost",
                "Materials Cost",
                "Shipping Cost",
                "Packaging Cost",
                "Assembly Cost",
                "Creative Fee",
                "Wholesale Price",
                "Retail Price",
                "Extra Parts",
                "Handling Fee",
            ],
        }
    }

    /// Column-attribute vocabulary (column header values) with the unit
    /// each column carries.
    pub fn attributes(self) -> &'static [(&'static str, ColumnKind)] {
        use ColumnKind::*;
        match self {
            Domain::Finance => &[
                ("FY 2013", Money),
                ("FY 2012", Money),
                ("FY 2011", Money),
                ("Q3 Estimate", Money),
                ("Q3 Actual", Money),
                ("% Change", Percent),
            ],
            Domain::Environment => &[
                ("German MSRP", Money),
                ("American MSRP", Money),
                ("Emission (g/km)", SmallCount),
                ("Fuel Economy", SmallCount),
                ("Final Rating", Rating),
                ("Range (km)", SmallCount),
            ],
            Domain::Health => &[
                ("male", Count),
                ("female", Count),
                ("total", Count),
                ("placebo", Count),
            ],
            Domain::Politics => &[
                ("Registered Voters", BigCount),
                ("Votes Cast", BigCount),
                ("Population", BigCount),
                ("Households", Count),
                ("Turnout %", Percent),
            ],
            Domain::Sports => &[
                ("Played", SmallCount),
                ("Won", SmallCount),
                ("Drawn", SmallCount),
                ("Lost", SmallCount),
                ("Goals For", SmallCount),
                ("Goals Against", SmallCount),
                ("Points", SmallCount),
                ("Attendance", BigCount),
            ],
            Domain::Others => &[
                ("Unit Price", Money),
                ("Bulk Price", Money),
                ("Stock", Count),
                ("Weight (kg)", SmallCount),
                ("Orders", Count),
            ],
        }
    }

    /// Topical filler words for paragraph prose.
    pub fn filler(self) -> &'static [&'static str] {
        match self {
            Domain::Finance => &[
                "the quarterly report shows solid momentum",
                "analysts expected weaker organic growth",
                "currency headwinds weighed on the outlook",
                "management reaffirmed its full-year guidance",
            ],
            Domain::Environment => &[
                "the ratings compare efficiency across trims",
                "charging infrastructure keeps improving",
                "incentives differ between markets",
                "the test cycle follows the official procedure",
            ],
            Domain::Health => &[
                "the drug trial followed standard protocol",
                "adverse events were recorded by clinicians",
                "the cohort completed the follow-up phase",
                "dosage was kept constant throughout",
            ],
            Domain::Politics => &[
                "the census night count is preliminary",
                "electoral boundaries were unchanged",
                "the returning officer certified the tally",
                "postal ballots are included in the figures",
            ],
            Domain::Sports => &[
                "the season entered its decisive phase",
                "the derby drew a record crowd",
                "injuries reshaped the starting lineup",
                "the table remains tight at the top",
            ],
            Domain::Others => &[
                "pricing assumes standard shipping terms",
                "the catalogue is updated every month",
                "bulk discounts apply beyond ten units",
                "handmade items vary slightly in finish",
            ],
        }
    }

    /// Noun used when counting things in this domain ("patients", …).
    pub fn count_noun(self) -> &'static str {
        match self {
            Domain::Finance => "units",
            Domain::Environment => "vehicles",
            Domain::Health => "patients",
            Domain::Politics => "people",
            Domain::Sports => "points",
            Domain::Others => "units",
        }
    }
}

/// What kind of values a column holds.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ColumnKind {
    /// Monetary amounts (hundreds to millions).
    Money,
    /// Percentages (0–100, one decimal).
    Percent,
    /// Ratings (1.0–5.0, two decimals).
    Rating,
    /// Small counts (0–150).
    SmallCount,
    /// Medium counts (10–5 000).
    Count,
    /// Large counts (10 000–5 000 000).
    BigCount,
}

impl ColumnKind {
    /// The unit cells in this column carry (before header hints).
    pub fn unit(self) -> Unit {
        match self {
            ColumnKind::Money => Unit::Currency(Currency::Usd),
            ColumnKind::Percent => Unit::Percent,
            _ => Unit::None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn six_domains_with_names() {
        assert_eq!(Domain::ALL.len(), 6);
        let names: Vec<&str> = Domain::ALL.iter().map(|d| d.name()).collect();
        assert_eq!(
            names,
            vec![
                "environment",
                "finance",
                "health",
                "politics",
                "sports",
                "others"
            ]
        );
    }

    #[test]
    fn shapes_follow_table_ix() {
        assert_eq!(Domain::Health.table_shape(), (3, 2));
        assert_eq!(Domain::Sports.table_shape(), (8, 6));
        assert_eq!(Domain::Finance.table_shape(), (7, 4));
    }

    #[test]
    fn vocabularies_large_enough_for_shapes() {
        for d in Domain::ALL {
            let (rows, cols) = d.table_shape();
            assert!(d.entities().len() >= rows, "{:?} entities", d);
            assert!(d.attributes().len() >= cols, "{:?} attributes", d);
            assert!(!d.filler().is_empty());
        }
    }

    #[test]
    fn column_kinds_have_units() {
        assert_eq!(ColumnKind::Money.unit(), Unit::Currency(Currency::Usd));
        assert_eq!(ColumnKind::Percent.unit(), Unit::Percent);
        assert_eq!(ColumnKind::Count.unit(), Unit::None);
    }
}

briq_json::json_unit_enum!(Domain {
    Finance,
    Environment,
    Health,
    Politics,
    Sports,
    Others,
});
briq_json::json_unit_enum!(ColumnKind {
    Money,
    Percent,
    Rating,
    SmallCount,
    Count,
    BigCount,
});
