//! Top-level corpus generation.

use briq_core::obs::{names, Recorder};
use briq_core::training::LabeledDocument;
use briq_table::Document;
use rand::prelude::*;
use rand::rngs::StdRng;

use crate::domain::Domain;
use crate::tablegen::{generate_table, GeneratedTable, TableGenConfig};
use crate::textgen::{render_document, MentionPlan, TextGenConfig};

/// Relative frequency of each mention plan, matching the type skew of
/// Table I (single-cell dominates; percent/ratio rare) plus distractors.
#[derive(Debug, Clone, Copy)]
pub struct MentionWeights {
    /// Single-cell references.
    pub single: f64,
    /// Column sums.
    pub sum: f64,
    /// Same-row differences.
    pub diff: f64,
    /// Same-column percentages.
    pub percent: f64,
    /// Same-row change ratios.
    pub ratio: f64,
    /// Numbers referring to no table.
    pub distractor: f64,
    /// Ranking references ("the highest …"), resolved by min/max virtual
    /// cells — the extended aggregate set (0 in the paper-aligned default;
    /// used by the `briq-eval extended` experiment).
    pub ranking: f64,
}

impl Default for MentionWeights {
    fn default() -> Self {
        // gold-type proportions ≈ Table I; ~19% unalignable mentions
        MentionWeights {
            single: 0.68,
            sum: 0.046,
            diff: 0.024,
            percent: 0.021,
            ratio: 0.025,
            distractor: 0.204,
            ranking: 0.0,
        }
    }
}

/// Corpus-level configuration. Difficulty knobs are fixed once for all
/// experiments (DESIGN.md substitution table).
#[derive(Debug, Clone)]
pub struct CorpusConfig {
    /// Number of documents to generate.
    pub n_documents: usize,
    /// RNG seed (full determinism).
    pub seed: u64,
    /// Table-generation knobs.
    pub tablegen: TableGenConfig,
    /// Text-rendering knobs.
    pub textgen: TextGenConfig,
    /// Mention-plan weights.
    pub weights: MentionWeights,
    /// Inclusive range of mentions per document (paper: ≈4.7 average).
    pub mentions_per_doc: (usize, usize),
    /// Probability a document carries two related tables (Fig. 3).
    pub two_table_rate: f64,
    /// Domain mix (must cover all domains; weights normalized).
    pub domain_weights: [(Domain, f64); 6],
}

impl Default for CorpusConfig {
    fn default() -> Self {
        CorpusConfig {
            n_documents: 400,
            seed: 20190408, // ICDE 2019 opening day
            tablegen: TableGenConfig::default(),
            textgen: TextGenConfig::default(),
            weights: MentionWeights::default(),
            mentions_per_doc: (3, 7),
            two_table_rate: 0.5,
            domain_weights: [
                (Domain::Environment, 0.10),
                (Domain::Finance, 0.25),
                (Domain::Health, 0.12),
                (Domain::Politics, 0.15),
                (Domain::Sports, 0.18),
                (Domain::Others, 0.20),
            ],
        }
    }
}

impl CorpusConfig {
    /// A `tableS`-scale preset (§VII-A: 495 pages → 1 598 documents). We
    /// generate documents directly; pages are only materialized for the
    /// throughput experiments.
    pub fn table_s(seed: u64) -> Self {
        CorpusConfig {
            n_documents: 1598,
            seed,
            ..Default::default()
        }
    }

    /// A smaller preset for unit/integration tests.
    pub fn small(seed: u64) -> Self {
        CorpusConfig {
            n_documents: 60,
            seed,
            ..Default::default()
        }
    }
}

/// A generated corpus: labeled documents plus their domains.
#[derive(Debug, Clone)]
pub struct GeneratedCorpus {
    /// The labeled documents.
    pub documents: Vec<LabeledDocument>,
    /// Domain of each document (parallel to `documents`).
    pub domains: Vec<Domain>,
}

impl GeneratedCorpus {
    /// Total gold alignments.
    pub fn gold_count(&self) -> usize {
        self.documents.iter().map(|d| d.gold.len()).sum()
    }

    /// Persist the corpus (documents, gold, domains) as JSON, so an
    /// experiment's exact data can be archived and re-analyzed.
    pub fn save(&self, path: impl AsRef<std::path::Path>) -> std::io::Result<()> {
        let json = briq_json::to_string(self);
        std::fs::write(path, json)
    }

    /// Load a corpus saved with [`GeneratedCorpus::save`].
    pub fn load(path: impl AsRef<std::path::Path>) -> std::io::Result<GeneratedCorpus> {
        let json = std::fs::read_to_string(path)?;
        briq_json::from_str(&json)
            .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e))
    }
}

fn pick_domain(weights: &[(Domain, f64); 6], rng: &mut impl Rng) -> Domain {
    let total: f64 = weights.iter().map(|&(_, w)| w).sum();
    let mut roll = rng.random_range(0.0..total);
    for &(d, w) in weights {
        if roll < w {
            return d;
        }
        roll -= w;
    }
    weights[5].0
}

/// Generate a full corpus.
pub fn generate_corpus(cfg: &CorpusConfig) -> GeneratedCorpus {
    generate_corpus_observed(cfg, &Recorder::disabled())
}

/// [`generate_corpus`] with observability: one `gen_corpus` span plus
/// the `corpus_*` counters (documents, tables, gold alignments) land in
/// `rec`. The recorder only observes — generated documents are
/// bit-identical with it enabled, disabled, or absent (generation is
/// seeded and the recorder never touches the RNG).
pub fn generate_corpus_observed(cfg: &CorpusConfig, rec: &Recorder) -> GeneratedCorpus {
    let _g = briq_core::span!(rec, names::SPAN_GEN_CORPUS);
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let mut documents = Vec::with_capacity(cfg.n_documents);
    let mut domains = Vec::with_capacity(cfg.n_documents);

    for id in 0..cfg.n_documents {
        let domain = pick_domain(&cfg.domain_weights, &mut rng);
        let base = generate_table(domain, &cfg.tablegen, &mut rng);
        let gen_tables: Vec<GeneratedTable> = if rng.random_bool(cfg.two_table_rate) {
            // Twin tables share structure and collide on values (Fig. 3).
            let twin = crate::tablegen::twin_table(&base, &cfg.tablegen, &mut rng);
            vec![base, twin]
        } else {
            vec![base]
        };

        let n_mentions = rng.random_range(cfg.mentions_per_doc.0..=cfg.mentions_per_doc.1);
        let plans: Vec<MentionPlan> = (0..n_mentions)
            .map(|_| sample_plan(&gen_tables, &cfg.weights, &mut rng))
            .collect();

        let (text, gold) = render_document(domain, &gen_tables, &plans, &cfg.textgen, &mut rng);
        let tables = gen_tables.into_iter().map(|g| g.table).collect();
        documents.push(LabeledDocument {
            document: Document::new(id, text, tables),
            gold,
        });
        domains.push(domain);
    }
    rec.count(names::CORPUS_DOCUMENTS, documents.len() as u64);
    rec.count(
        names::CORPUS_TABLES,
        documents
            .iter()
            .map(|d| d.document.tables.len() as u64)
            .sum(),
    );
    rec.count(
        names::CORPUS_GOLD,
        documents.iter().map(|d| d.gold.len() as u64).sum(),
    );
    GeneratedCorpus { documents, domains }
}

/// Sample one mention plan, falling back to single-cell (or distractor)
/// when the table cannot support the rolled aggregate.
fn sample_plan(tables: &[GeneratedTable], w: &MentionWeights, rng: &mut impl Rng) -> MentionPlan {
    let table = rng.random_range(0..tables.len());
    let g = &tables[table];
    let total = w.single + w.sum + w.diff + w.percent + w.ratio + w.distractor + w.ranking;
    let mut roll = rng.random_range(0.0..total);

    let single = |g: &GeneratedTable, rng: &mut dyn RngCore| MentionPlan::Single {
        table,
        row: rng.random_range(0..g.n_rows()),
        col: rng.random_range(0..g.n_cols()),
    };

    if roll < w.single {
        return single(g, rng);
    }
    roll -= w.single;

    let agg_cols = g.aggregatable_cols();
    if roll < w.sum {
        if !agg_cols.is_empty() && g.n_rows() >= 2 {
            let col = agg_cols[rng.random_range(0..agg_cols.len())];
            return MentionPlan::Sum { table, col };
        }
        return single(g, rng);
    }
    roll -= w.sum;

    // same-kind column pairs for diff/ratio; the parsed cell units must
    // also agree (e.g. "Emission (g/km)" and "Range (km)" share a value
    // kind but carry different measures, so no pair virtual cell exists)
    let unit_of = |c: usize| {
        let (gr, gc) = g.grid_pos(0, c);
        g.table
            .quantity(gr, gc)
            .map(|q| q.unit)
            .unwrap_or(briq_text::units::Unit::None)
    };
    let kind_pair = || -> Option<(usize, usize)> {
        for a in 0..g.n_cols() {
            for b in (a + 1)..g.n_cols() {
                let units_ok = {
                    let (ua, ub) = (unit_of(a), unit_of(b));
                    ua == briq_text::units::Unit::None
                        || ub == briq_text::units::Unit::None
                        || ua.matches(ub)
                };
                if g.kinds[a] == g.kinds[b]
                    && units_ok
                    && agg_cols.contains(&a)
                    && agg_cols.contains(&b)
                {
                    return Some((a, b));
                }
            }
        }
        None
    };

    if roll < w.diff {
        if let Some((a, b)) = kind_pair() {
            let row = rng.random_range(0..g.n_rows());
            if g.values[row][a] != g.values[row][b] {
                return MentionPlan::Diff {
                    table,
                    row,
                    col_a: a,
                    col_b: b,
                };
            }
        }
        return single(g, rng);
    }
    roll -= w.diff;

    if roll < w.percent {
        if g.n_rows() >= 2 && !agg_cols.is_empty() {
            let col = agg_cols[rng.random_range(0..agg_cols.len())];
            let row_num = rng.random_range(0..g.n_rows());
            let mut row_den = rng.random_range(0..g.n_rows());
            if row_den == row_num {
                row_den = (row_den + 1) % g.n_rows();
            }
            if g.values[row_den][col] != 0.0 {
                return MentionPlan::Percent {
                    table,
                    col,
                    row_num,
                    row_den,
                };
            }
        }
        return single(g, rng);
    }
    roll -= w.percent;

    if roll < w.ratio {
        if let Some((a, b)) = kind_pair() {
            let row = rng.random_range(0..g.n_rows());
            if g.values[row][a] != 0.0 && g.values[row][a] != g.values[row][b] {
                return MentionPlan::Ratio {
                    table,
                    row,
                    col_new: a,
                    col_old: b,
                };
            }
        }
        return single(g, rng);
    }
    roll -= w.ratio;

    if roll < w.distractor {
        return MentionPlan::Distractor;
    }

    // ranking (extended aggregates)
    if !agg_cols.is_empty() && g.n_rows() >= 2 {
        let col = agg_cols[rng.random_range(0..agg_cols.len())];
        return MentionPlan::Ranking {
            table,
            col,
            maximum: rng.random_bool(0.5),
        };
    }
    single(g, rng)
}

#[cfg(test)]
mod tests {
    use super::*;
    use briq_table::TableMentionKind;

    #[test]
    fn corpus_is_deterministic() {
        let a = generate_corpus(&CorpusConfig::small(1));
        let b = generate_corpus(&CorpusConfig::small(1));
        assert_eq!(a.documents.len(), b.documents.len());
        for (x, y) in a.documents.iter().zip(&b.documents) {
            assert_eq!(x.document.text, y.document.text);
            assert_eq!(x.gold, y.gold);
        }
    }

    #[test]
    fn different_seeds_differ() {
        let a = generate_corpus(&CorpusConfig::small(1));
        let b = generate_corpus(&CorpusConfig::small(2));
        assert_ne!(a.documents[0].document.text, b.documents[0].document.text);
    }

    #[test]
    fn every_document_has_tables_and_text() {
        let c = generate_corpus(&CorpusConfig::small(3));
        assert_eq!(c.documents.len(), 60);
        for (ld, domain) in c.documents.iter().zip(&c.domains) {
            assert!(!ld.document.text.is_empty());
            assert!(!ld.document.tables.is_empty());
            assert!(Domain::ALL.contains(domain));
        }
    }

    #[test]
    fn gold_targets_exist_in_generated_virtual_cells() {
        use briq_core::training::matches_target;
        use briq_table::virtual_cells::{all_table_mentions, VirtualCellConfig};
        let c = generate_corpus(&CorpusConfig::small(4));
        let mut checked = 0;
        for ld in &c.documents {
            let targets = all_table_mentions(&ld.document.tables, &VirtualCellConfig::default());
            for g in &ld.gold {
                let found = targets.iter().any(|t| matches_target(g, t));
                assert!(
                    found,
                    "gold {:?} has no generated target in doc {:?}",
                    g, ld.document.id
                );
                checked += 1;
            }
        }
        assert!(checked > 100, "expected plenty of gold, got {checked}");
    }

    #[test]
    fn type_mix_roughly_matches_table_i() {
        let cfg = CorpusConfig {
            n_documents: 300,
            ..CorpusConfig::default()
        };
        let c = generate_corpus(&cfg);
        let total = c.gold_count() as f64;
        let count = |k: &str| {
            c.documents
                .iter()
                .flat_map(|d| &d.gold)
                .filter(|g| g.kind.name() == k)
                .count() as f64
        };
        let single = count("single-cell") / total;
        assert!(single > 0.75 && single < 0.95, "single fraction {single}");
        for k in ["sum", "diff", "percent", "ratio"] {
            let f = count(k) / total;
            assert!(f > 0.005 && f < 0.12, "{k} fraction {f}");
        }
    }

    #[test]
    fn aggregates_present_in_gold() {
        let c = generate_corpus(&CorpusConfig::table_s(5));
        let kinds: std::collections::BTreeSet<String> = c
            .documents
            .iter()
            .flat_map(|d| &d.gold)
            .map(|g| g.kind.name().to_string())
            .collect();
        for k in ["single-cell", "sum", "diff", "percent", "ratio"] {
            assert!(kinds.contains(k), "missing kind {k}: {kinds:?}");
        }
        // no extended aggregates in gold
        assert!(!kinds.contains("avg"));
    }

    #[test]
    fn two_table_documents_occur() {
        let c = generate_corpus(&CorpusConfig::small(6));
        assert!(c.documents.iter().any(|d| d.document.tables.len() == 2));
    }

    #[test]
    fn corpus_roundtrips_through_json() {
        let c = generate_corpus(&CorpusConfig::small(77));
        let dir = std::env::temp_dir().join("briq-corpus-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("corpus.json");
        c.save(&path).unwrap();
        let loaded = GeneratedCorpus::load(&path).unwrap();
        assert_eq!(loaded.documents.len(), c.documents.len());
        assert_eq!(loaded.domains, c.domains);
        for (a, b) in loaded.documents.iter().zip(&c.documents) {
            assert_eq!(a.document.text, b.document.text);
            assert_eq!(a.gold, b.gold);
            assert_eq!(a.document.tables, b.document.tables);
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn gold_spans_inside_text() {
        let c = generate_corpus(&CorpusConfig::small(7));
        for ld in &c.documents {
            for g in &ld.gold {
                assert!(g.mention_end <= ld.document.text.len());
                assert!(g.mention_start < g.mention_end);
                let _ = g.kind == TableMentionKind::SingleCell;
            }
        }
    }
}

briq_json::json_struct!(GeneratedCorpus { documents, domains });
