//! Value sampling and surface rendering.
//!
//! Cells are rendered with realistic formatting (digit grouping, decimals)
//! and text mentions are re-rendered in possibly *different* formats —
//! the format heterogeneity that motivates the paper (§I: "37K EUR" in
//! text vs `36900` in a cell).

use crate::domain::ColumnKind;
use rand::prelude::*;

/// Sample a cell value for a column kind.
///
/// Bare integers avoid the 1900–2100 range so the extractor's date filter
/// never eats a legitimate value (years are excluded quantities, §II-A).
pub fn sample_value(kind: ColumnKind, rng: &mut impl Rng) -> f64 {
    let v = match kind {
        ColumnKind::Money => {
            // spread across magnitudes: hundreds .. tens of millions
            let mag = rng.random_range(2..7);
            let base: f64 = rng.random_range(1.0..10.0);
            (base * 10f64.powi(mag)).round()
        }
        ColumnKind::Percent => (rng.random_range(0.1..99.9f64) * 10.0).round() / 10.0,
        ColumnKind::Rating => (rng.random_range(1.0..5.0f64) * 100.0).round() / 100.0,
        ColumnKind::SmallCount => rng.random_range(1..150) as f64,
        ColumnKind::Count => rng.random_range(10..5_000) as f64,
        ColumnKind::BigCount => rng.random_range(10_000..5_000_000) as f64,
    };
    avoid_year_range(v)
}

/// Nudge integer values out of 1900–2100 (which read as years).
pub fn avoid_year_range(v: f64) -> f64 {
    if v.fract() == 0.0 && (1900.0..=2100.0).contains(&v) {
        v + 250.0
    } else {
        v
    }
}

/// Format a value as a table cell (Western grouping, minimal decimals).
pub fn render_cell(v: f64, kind: ColumnKind) -> String {
    match kind {
        ColumnKind::Percent => format!("{v:.1}%"),
        ColumnKind::Rating => trim_decimal(&format!("{v:.2}")),
        _ => {
            if v.fract() == 0.0 {
                group_thousands(v as i64)
            } else {
                trim_decimal(&format!("{v:.2}"))
            }
        }
    }
}

/// Insert `,` thousands separators.
pub fn group_thousands(v: i64) -> String {
    let neg = v < 0;
    let digits = v.abs().to_string();
    let mut out = String::new();
    for (i, c) in digits.chars().enumerate() {
        if i > 0 && (digits.len() - i).is_multiple_of(3) {
            out.push(',');
        }
        out.push(c);
    }
    if neg {
        format!("-{out}")
    } else {
        out
    }
}

fn trim_decimal(s: &str) -> String {
    if s.contains('.') {
        s.trim_end_matches('0').trim_end_matches('.').to_string()
    } else {
        s.to_string()
    }
}

/// How a text mention renders a value.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MentionStyle {
    /// Exactly the cell surface (`3,263`).
    Exact,
    /// Plain digits without grouping (`3263`).
    Plain,
    /// Rescaled with a scale word (`$3.26 billion` for 3 263 000 000).
    ScaleWord,
    /// `K` suffix (`37K` for 36 900).
    SuffixK,
    /// Rounded to ~2 significant digits with an "about" cue upstream.
    Approximate,
    /// Least significant digit truncated (`6746` → `6740`) — writers do
    /// this routinely, and it keeps value-distance features from becoming
    /// razor-thin exact-match detectors.
    TruncatedDigit,
    /// Least significant digit rounded (`6746` → `6750`).
    RoundedDigit,
}

/// Render a *normalized* value as a text mention surface.
///
/// Returns `(surface, is_approximate)` — approximate surfaces do not
/// reproduce the value exactly and generators should prepend an
/// approximation cue word sometimes.
pub fn render_mention(v: f64, style: MentionStyle, cell_surface: &str) -> (String, bool) {
    match style {
        MentionStyle::Exact => (cell_surface.trim_end_matches('%').to_string(), false),
        MentionStyle::Plain => {
            if v.fract() == 0.0 {
                (format!("{}", v as i64), false)
            } else {
                (trim_decimal(&format!("{v:.2}")), false)
            }
        }
        MentionStyle::ScaleWord => {
            let (scaled, word) = if v.abs() >= 1e9 {
                (v / 1e9, "billion")
            } else if v.abs() >= 1e6 {
                (v / 1e6, "million")
            } else if v.abs() >= 1e3 {
                (v / 1e3, "thousand")
            } else {
                return render_mention(v, MentionStyle::Plain, cell_surface);
            };
            let rounded = (scaled * 100.0).round() / 100.0;
            let approx = (rounded
                * match word {
                    "billion" => 1e9,
                    "million" => 1e6,
                    _ => 1e3,
                }
                - v)
                .abs()
                > 1e-9;
            (
                format!("{} {word}", trim_decimal(&format!("{rounded:.2}"))),
                approx,
            )
        }
        MentionStyle::SuffixK => {
            if v.abs() < 1e3 {
                return render_mention(v, MentionStyle::Plain, cell_surface);
            }
            let k = v / 1e3;
            let rounded = k.round();
            let approx = (rounded * 1e3 - v).abs() > 1e-9;
            (format!("{}K", rounded as i64), approx)
        }
        MentionStyle::Approximate => {
            let rounded = round_significant(v, 2);
            let approx = (rounded - v).abs() > 1e-9;
            let s = if rounded.fract() == 0.0 {
                format!("{}", rounded as i64)
            } else {
                trim_decimal(&format!("{rounded:.2}"))
            };
            (s, approx)
        }
        MentionStyle::TruncatedDigit | MentionStyle::RoundedDigit => {
            let (plain, _) = render_mention(v, MentionStyle::Plain, cell_surface);
            let digits = plain.chars().filter(|c| c.is_ascii_digit()).count();
            if digits <= 1 {
                return (plain, false);
            }
            let adjusted = if plain.contains('.') {
                let prec = plain.len() - plain.rfind('.').unwrap() - 1;
                let factor = 10f64.powi(prec as i32 - 1);
                let x = v * factor;
                let x = if style == MentionStyle::TruncatedDigit {
                    x.trunc()
                } else {
                    x.round()
                };
                let x = x / factor;
                if prec <= 1 {
                    format!("{}", x as i64)
                } else {
                    trim_decimal(&format!("{x:.*}", prec - 1))
                }
            } else {
                let i = v as i64;
                let i = if style == MentionStyle::TruncatedDigit {
                    (i / 10) * 10
                } else {
                    ((i as f64 / 10.0).round() as i64) * 10
                };
                format!("{i}")
            };
            let approx = adjusted != plain;
            (adjusted, approx)
        }
    }
}

/// Round to `sig` significant digits.
pub fn round_significant(v: f64, sig: u32) -> f64 {
    if v == 0.0 {
        return 0.0;
    }
    let mag = v.abs().log10().floor() as i32;
    let factor = 10f64.powi(sig as i32 - 1 - mag);
    (v * factor).round() / factor
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;

    #[test]
    fn grouping() {
        assert_eq!(group_thousands(3263), "3,263");
        assert_eq!(group_thousands(1144716), "1,144,716");
        assert_eq!(group_thousands(42), "42");
        assert_eq!(group_thousands(-9500), "-9,500");
    }

    #[test]
    fn cell_rendering() {
        assert_eq!(render_cell(3263.0, ColumnKind::Money), "3,263");
        assert_eq!(render_cell(12.7, ColumnKind::Percent), "12.7%");
        assert_eq!(render_cell(2.67, ColumnKind::Rating), "2.67");
        assert_eq!(render_cell(1.5, ColumnKind::Money), "1.5");
    }

    #[test]
    fn sampled_values_parse_back() {
        let mut rng = StdRng::seed_from_u64(1);
        for kind in [
            ColumnKind::Money,
            ColumnKind::Percent,
            ColumnKind::Rating,
            ColumnKind::SmallCount,
            ColumnKind::Count,
            ColumnKind::BigCount,
        ] {
            for _ in 0..50 {
                let v = sample_value(kind, &mut rng);
                let cell = render_cell(v, kind);
                let q = briq_text::parse_cell_quantity(&cell)
                    .unwrap_or_else(|| panic!("cell {cell:?} must parse"));
                assert!((q.value - v).abs() < 1e-6, "{cell} -> {} != {v}", q.value);
            }
        }
    }

    #[test]
    fn year_range_avoided() {
        assert_eq!(avoid_year_range(1995.0), 2245.0);
        assert_eq!(avoid_year_range(1995.5), 1995.5);
        assert_eq!(avoid_year_range(150.0), 150.0);
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..200 {
            let v = sample_value(ColumnKind::Count, &mut rng);
            assert!(!(v.fract() == 0.0 && (1900.0..=2100.0).contains(&v)));
        }
    }

    #[test]
    fn scale_word_mentions() {
        let (s, _) = render_mention(3.263e9, MentionStyle::ScaleWord, "3,263");
        assert_eq!(s, "3.26 billion");
        let (s, approx) = render_mention(36900.0, MentionStyle::SuffixK, "36,900");
        assert_eq!(s, "37K");
        assert!(approx);
        let (s, approx) = render_mention(500000.0, MentionStyle::SuffixK, "500,000");
        assert_eq!(s, "500K");
        assert!(!approx);
    }

    #[test]
    fn exact_and_plain() {
        let (s, a) = render_mention(3263.0, MentionStyle::Exact, "3,263");
        assert_eq!(s, "3,263");
        assert!(!a);
        let (s, a) = render_mention(3263.0, MentionStyle::Plain, "3,263");
        assert_eq!(s, "3263");
        assert!(!a);
    }

    #[test]
    fn approximate_rounds_to_two_sig() {
        assert_eq!(round_significant(36900.0, 2), 37000.0);
        assert_eq!(round_significant(0.0157, 2), 0.016);
        assert_eq!(round_significant(0.0, 2), 0.0);
        let (s, approx) = render_mention(36900.0, MentionStyle::Approximate, "36,900");
        assert_eq!(s, "37000");
        assert!(approx);
    }

    #[test]
    fn mention_surfaces_extract() {
        // every style must survive the text extractor
        for (v, style) in [
            (3263.0, MentionStyle::Exact),
            (3263.0, MentionStyle::Plain),
            (3.263e9, MentionStyle::ScaleWord),
            (36900.0, MentionStyle::SuffixK),
            (36900.0, MentionStyle::Approximate),
        ] {
            let (s, _) = render_mention(v, style, "3,263");
            let text = format!("the figure reached {s} overall");
            let ms = briq_text::extract_quantities(&text);
            assert_eq!(ms.len(), 1, "style {style:?} surface {s:?}");
        }
    }
}
