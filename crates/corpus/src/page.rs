//! HTML page materialization — used by the throughput experiments
//! (Table VIII) so the timed path includes HTML parsing and page
//! segmentation, as in the original system.

use briq_core::training::LabeledDocument;
use briq_table::Table;

/// Serialize a [`Table`] back to minimal HTML.
pub fn table_to_html(table: &Table) -> String {
    let mut out = String::from("<table>");
    if !table.caption.is_empty() {
        out.push_str("<caption>");
        out.push_str(&escape(&table.caption));
        out.push_str("</caption>");
    }
    for (r, row) in table.cells.iter().enumerate() {
        out.push_str("<tr>");
        for cell in row {
            let tag = if r < table.header_rows { "th" } else { "td" };
            out.push('<');
            out.push_str(tag);
            out.push('>');
            out.push_str(&escape(cell));
            out.push_str("</");
            out.push_str(tag);
            out.push('>');
        }
        out.push_str("</tr>");
    }
    out.push_str("</table>");
    out
}

fn escape(s: &str) -> String {
    s.replace('&', "&amp;")
        .replace('<', "&lt;")
        .replace('>', "&gt;")
}

/// Render several labeled documents as one web page: paragraph, then its
/// tables, repeated.
pub fn render_page(docs: &[&LabeledDocument]) -> String {
    let mut out = String::from("<html><body>");
    for ld in docs {
        out.push_str("<p>");
        out.push_str(&escape(&ld.document.text));
        out.push_str("</p>");
        for t in &ld.document.tables {
            out.push_str(&table_to_html(t));
        }
    }
    out.push_str("</body></html>");
    out
}

/// Batch page generator: materialize a whole seeded corpus as HTML pages,
/// `docs_per_page` labeled documents per page. This is the input side of
/// the batch-alignment engine — CI's bench-smoke and determinism stages
/// and `briq-align --gen-corpus` all generate their workloads through it,
/// so the same `(seed, n_documents, docs_per_page)` triple always yields
/// byte-identical pages.
pub fn corpus_pages(cfg: &crate::corpus::CorpusConfig, docs_per_page: usize) -> Vec<String> {
    let corpus = crate::corpus::generate_corpus(cfg);
    corpus
        .documents
        .chunks(docs_per_page.max(1))
        .map(|chunk| {
            let refs: Vec<&LabeledDocument> = chunk.iter().collect();
            render_page(&refs)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::corpus::{generate_corpus, CorpusConfig};
    use briq_table::html::parse_page;
    use briq_table::segment::{segment_page, SegmentConfig};

    #[test]
    fn tables_roundtrip_through_html() {
        let c = generate_corpus(&CorpusConfig::small(21));
        let ld = &c.documents[0];
        let html = table_to_html(&ld.document.tables[0]);
        let page = parse_page(&html);
        assert_eq!(page.tables.len(), 1);
        let reparsed = Table::from_raw(&page.tables[0]);
        assert_eq!(reparsed.cells, ld.document.tables[0].cells);
        assert_eq!(reparsed.caption, ld.document.tables[0].caption);
        assert_eq!(
            reparsed.quantity_count(),
            ld.document.tables[0].quantity_count()
        );
    }

    #[test]
    fn pages_segment_back_into_documents() {
        let c = generate_corpus(&CorpusConfig::small(22));
        let slice: Vec<&LabeledDocument> = c.documents.iter().take(3).collect();
        let html = render_page(&slice);
        let page = parse_page(&html);
        assert_eq!(page.paragraphs.len(), 3);
        assert_eq!(
            page.tables.len(),
            slice.iter().map(|d| d.document.tables.len()).sum::<usize>()
        );
        let docs = segment_page(&page, &SegmentConfig::default(), 0);
        // every paragraph relates at least to its adjacent table
        assert!(docs.len() >= 2, "segmented {} documents", docs.len());
    }

    #[test]
    fn corpus_pages_are_seed_deterministic() {
        let cfg = CorpusConfig::small(33);
        let a = corpus_pages(&cfg, 3);
        let b = corpus_pages(&cfg, 3);
        assert!(!a.is_empty());
        assert_eq!(a, b, "same seed must yield byte-identical pages");
        let n_docs = generate_corpus(&cfg).documents.len();
        assert_eq!(a.len(), n_docs.div_ceil(3));
        // `docs_per_page == 0` is clamped, not a panic.
        assert_eq!(corpus_pages(&cfg, 0).len(), n_docs);
    }

    #[test]
    fn entities_escaped() {
        let t = Table::from_grid(
            "a < b & c",
            vec![vec!["x".into(), "1".into()], vec!["<y>".into(), "2".into()]],
        );
        let html = table_to_html(&t);
        assert!(html.contains("a &lt; b &amp; c"));
        assert!(html.contains("&lt;y&gt;"));
    }
}
