//! # briq-corpus
//!
//! Synthetic corpus generator standing in for the paper's annotated
//! Common-Crawl data (§VII-A: the `tableS` / `tableL` slices of the
//! Dresden Web Table Corpus, which are not redistributable).
//!
//! The generator reproduces the *phenomena* the paper identifies as the
//! hard parts of quantity alignment, with exact ground truth:
//!
//! * six thematic domains with the table shapes of Table IX (health
//!   tables are small, sports tables large),
//! * text mentions rendered in heterogeneous surface forms — grouped
//!   (`3,263`), rescaled (`$3.26 billion` for a cell `3,263` under an
//!   `(in Mio)` caption), suffix-scaled (`37K`), approximate, with or
//!   without units,
//! * aggregate references (column totals, differences, percentages,
//!   change ratios) whose values appear in *no* cell,
//! * same-value collisions within and across tables (the Fig. 3 / Fig. 6
//!   ambiguities),
//! * distractor quantities that refer to no table (the mapping is
//!   partial),
//! * the type-frequency skew of Table I (percent/ratio mentions rare),
//! * a simulated 8-annotator panel with consensus labeling and a
//!   measurable Fleiss κ (§VII-A).
//!
//! Difficulty knobs live in [`corpus::CorpusConfig`] and are fixed once
//! for all experiments (see DESIGN.md §1, substitution table).

#![warn(missing_docs)]

pub mod annotate;
pub mod corpus;
pub mod domain;
pub mod numbers;
pub mod page;
pub mod perturb;
pub mod tablegen;
pub mod textgen;

pub use corpus::{generate_corpus, CorpusConfig, GeneratedCorpus};
pub use domain::Domain;
pub use perturb::{perturb_document, Perturbation};
