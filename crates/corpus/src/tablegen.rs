//! Domain-specific table generation with full semantic metadata.

use briq_table::Table;
use rand::prelude::*;

use crate::domain::{ColumnKind, Domain};
use crate::numbers::{render_cell, sample_value};

/// A generated table plus the ground-truth values behind its cells.
#[derive(Debug, Clone)]
pub struct GeneratedTable {
    /// The parsed, normalized table (as the pipeline will see it).
    pub table: Table,
    /// Normalized value of data cell `(data_row, data_col)` (0-based in
    /// data coordinates; add 1 to each for grid coordinates).
    pub values: Vec<Vec<f64>>,
    /// Column kinds per data column.
    pub kinds: Vec<ColumnKind>,
    /// Row-entity names per data row.
    pub entities: Vec<String>,
    /// Column-attribute names per data column.
    pub attrs: Vec<String>,
    /// Caption scale applied to money columns (1.0 when none).
    pub scale: f64,
}

impl GeneratedTable {
    /// Grid coordinates of data cell `(r, c)` (header row/col offset).
    pub fn grid_pos(&self, r: usize, c: usize) -> (usize, usize) {
        (r + 1, c + 1)
    }

    /// Number of data rows.
    pub fn n_rows(&self) -> usize {
        self.values.len()
    }

    /// Number of data columns.
    pub fn n_cols(&self) -> usize {
        self.kinds.len()
    }

    /// Data columns suitable as aggregate targets (counts and money).
    pub fn aggregatable_cols(&self) -> Vec<usize> {
        (0..self.n_cols())
            .filter(|&c| !matches!(self.kinds[c], ColumnKind::Percent | ColumnKind::Rating))
            .collect()
    }
}

/// Table-generation knobs.
#[derive(Debug, Clone, Copy)]
pub struct TableGenConfig {
    /// Probability that a money table gets an `(in $ Millions)` caption
    /// (cells then hold small numbers that normalize ×1e6 — Fig. 1c).
    pub caption_scale_rate: f64,
    /// Probability of duplicating one value into another cell of the same
    /// column (same-value collision, Fig. 6a).
    pub collision_rate: f64,
    /// For twin tables (Fig. 3): probability that each cell of the twin
    /// copies the corresponding cell of the base table, creating
    /// cross-table same-value collisions only joint inference can break.
    pub twin_copy_rate: f64,
}

impl Default for TableGenConfig {
    fn default() -> Self {
        TableGenConfig {
            caption_scale_rate: 0.35,
            collision_rate: 0.3,
            twin_copy_rate: 0.6,
        }
    }
}

/// Generate one table for `domain`.
pub fn generate_table(domain: Domain, cfg: &TableGenConfig, rng: &mut impl Rng) -> GeneratedTable {
    let (want_rows, want_cols) = domain.table_shape();
    // jitter the shape slightly (±1) but stay within vocabulary bounds
    let n_rows = (want_rows as i64 + rng.random_range(-1..=1)).max(2) as usize;
    let n_rows = n_rows.min(domain.entities().len());
    let n_cols = (want_cols as i64 + rng.random_range(-1..=1)).max(2) as usize;
    let n_cols = n_cols.min(domain.attributes().len());

    // pick entities and attributes without replacement
    let mut entities: Vec<&str> = domain.entities().to_vec();
    entities.shuffle(rng);
    entities.truncate(n_rows);
    let mut attrs: Vec<(&str, ColumnKind)> = domain.attributes().to_vec();
    attrs.shuffle(rng);
    attrs.truncate(n_cols);

    // Caption scale only for tables where every non-percent column is
    // monetary: the normalizer applies a caption scale hint to *all*
    // unitless cells, so mixing scaled money with unscaled counts would
    // corrupt the count columns.
    let all_money = attrs
        .iter()
        .all(|&(_, k)| matches!(k, ColumnKind::Money | ColumnKind::Percent))
        && attrs.iter().any(|&(_, k)| k == ColumnKind::Money);
    let scaled = all_money && rng.random_bool(cfg.caption_scale_rate);
    let (caption, scale) = if scaled {
        (format!("{} figures (in $ Millions)", domain.name()), 1e6)
    } else {
        (format!("{} statistics", domain.name()), 1.0)
    };

    // sample raw values; a literal "total" column sums the counts before it
    let mut raw: Vec<Vec<f64>> = Vec::with_capacity(n_rows);
    for _ in 0..n_rows {
        let mut row: Vec<f64> = attrs.iter().map(|&(_, k)| sample_value(k, rng)).collect();
        for (c, &(name, _)) in attrs.iter().enumerate() {
            if name.eq_ignore_ascii_case("total") {
                let sum: f64 = attrs
                    .iter()
                    .enumerate()
                    .filter(|&(i, &(n2, k2))| {
                        i != c
                            && !n2.eq_ignore_ascii_case("total")
                            && matches!(k2, ColumnKind::Count | ColumnKind::SmallCount)
                    })
                    .map(|(i, _)| row[i])
                    .sum();
                if sum > 0.0 {
                    row[c] = sum;
                }
            }
        }
        raw.push(row);
    }

    // same-value collisions within columns (Fig. 6a): each column may
    // duplicate one of its values into another row
    if n_rows >= 2 {
        // `c` indexes two rng-chosen rows at once, so a range loop is the
        // natural shape here.
        #[allow(clippy::needless_range_loop)]
        for c in 0..n_cols {
            if rng.random_bool(cfg.collision_rate) {
                let a = rng.random_range(0..n_rows);
                let mut b = rng.random_range(0..n_rows);
                if a == b {
                    b = (b + 1) % n_rows;
                }
                raw[b][c] = raw[a][c];
            }
        }
    }

    let entities: Vec<String> = entities.iter().map(|s| s.to_string()).collect();
    let attrs: Vec<(String, ColumnKind)> = attrs.iter().map(|&(a, k)| (a.to_string(), k)).collect();
    assemble(&caption, entities, attrs, raw, scale)
}

/// Build the twin of `base` (Fig. 3): identical attributes and entities,
/// fresh values, with each cell copied from the base with probability
/// `cfg.twin_copy_rate` — the cross-table same-value collisions that make
/// purely local resolution fail.
pub fn twin_table(
    base: &GeneratedTable,
    cfg: &TableGenConfig,
    rng: &mut impl Rng,
) -> GeneratedTable {
    let n_rows = base.n_rows();
    let n_cols = base.n_cols();
    let mut raw: Vec<Vec<f64>> = (0..n_rows)
        .map(|r| {
            (0..n_cols)
                .map(|c| {
                    if rng.random_bool(cfg.twin_copy_rate) {
                        base.values[r][c]
                            / if base.kinds[c] == ColumnKind::Money {
                                base.scale
                            } else {
                                1.0
                            }
                    } else {
                        sample_value(base.kinds[c], rng)
                    }
                })
                .collect()
        })
        .collect();
    // keep literal "total" columns consistent in the twin as well
    for (c, name) in base.attrs.iter().enumerate() {
        if name.eq_ignore_ascii_case("total") {
            for row in raw.iter_mut() {
                let sum: f64 = base
                    .kinds
                    .iter()
                    .enumerate()
                    .filter(|&(i, k)| {
                        i != c && matches!(k, ColumnKind::Count | ColumnKind::SmallCount)
                    })
                    .map(|(i, _)| row[i])
                    .sum();
                if sum > 0.0 {
                    row[c] = sum;
                }
            }
        }
    }
    let caption = format!("{} — segment B", base.table.caption);
    let attrs: Vec<(String, ColumnKind)> = base
        .attrs
        .iter()
        .cloned()
        .zip(base.kinds.iter().copied())
        .collect();
    assemble(&caption, base.entities.clone(), attrs, raw, base.scale)
}

/// Assemble a [`GeneratedTable`] from its parts. `raw` holds the numbers
/// as written in the cells; money columns normalize by `scale`.
fn assemble(
    caption: &str,
    entities: Vec<String>,
    attrs: Vec<(String, ColumnKind)>,
    raw: Vec<Vec<f64>>,
    scale: f64,
) -> GeneratedTable {
    let mut grid: Vec<Vec<String>> = Vec::with_capacity(raw.len() + 1);
    let mut header = vec![String::new()];
    header.extend(attrs.iter().map(|(a, _)| a.clone()));
    grid.push(header);
    for (r, entity) in entities.iter().enumerate() {
        let mut row = vec![entity.clone()];
        for (c, &(_, kind)) in attrs.iter().enumerate() {
            row.push(render_cell(raw[r][c], kind));
        }
        grid.push(row);
    }

    let table = Table::from_grid(caption, grid);

    // normalized values: money columns scale by the caption factor
    let values: Vec<Vec<f64>> = raw
        .iter()
        .map(|row| {
            row.iter()
                .enumerate()
                .map(|(c, &v)| {
                    if attrs[c].1 == ColumnKind::Money {
                        v * scale
                    } else {
                        v
                    }
                })
                .collect()
        })
        .collect();

    GeneratedTable {
        table,
        values,
        kinds: attrs.iter().map(|&(_, k)| k).collect(),
        entities,
        attrs: attrs.into_iter().map(|(a, _)| a).collect(),
        scale,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(11)
    }

    #[test]
    fn generated_table_parses_consistently() {
        let mut rng = rng();
        for domain in Domain::ALL {
            for _ in 0..10 {
                let g = generate_table(domain, &TableGenConfig::default(), &mut rng);
                assert_eq!(g.table.header_rows, 1, "{domain:?}");
                assert_eq!(g.table.header_cols, 1, "{domain:?}");
                for r in 0..g.n_rows() {
                    for c in 0..g.n_cols() {
                        let (gr, gc) = g.grid_pos(r, c);
                        let q = g
                            .table
                            .quantity(gr, gc)
                            .unwrap_or_else(|| panic!("{domain:?} cell ({gr},{gc}) must parse"));
                        assert!(
                            (q.value - g.values[r][c]).abs() < 1e-6 * g.values[r][c].abs().max(1.0),
                            "{domain:?} ({gr},{gc}): parsed {} vs truth {}",
                            q.value,
                            g.values[r][c]
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn shapes_near_domain_targets() {
        let mut rng = rng();
        let g = generate_table(Domain::Sports, &TableGenConfig::default(), &mut rng);
        let (want_r, want_c) = Domain::Sports.table_shape();
        assert!((g.n_rows() as i64 - want_r as i64).abs() <= 1);
        assert!((g.n_cols() as i64 - want_c as i64).abs() <= 1);
    }

    #[test]
    fn caption_scale_applied() {
        let mut rng = rng();
        let cfg = TableGenConfig {
            caption_scale_rate: 1.0,
            collision_rate: 0.0,
            ..Default::default()
        };
        // finance always has money columns
        let g = generate_table(Domain::Finance, &cfg, &mut rng);
        assert_eq!(g.scale, 1e6);
        // a money cell's normalized value carries the scale
        let money_col = g.kinds.iter().position(|&k| k == ColumnKind::Money);
        if let Some(c) = money_col {
            let (gr, gc) = g.grid_pos(0, c);
            let q = g.table.quantity(gr, gc).unwrap();
            assert!((q.value - g.values[0][c]).abs() < 1e-3);
            assert!(q.value >= 1e6, "scaled money value, got {}", q.value);
        }
    }

    #[test]
    fn collisions_duplicate_values() {
        let mut rng = rng();
        let cfg = TableGenConfig {
            caption_scale_rate: 0.0,
            collision_rate: 1.0,
            ..Default::default()
        };
        let mut found = false;
        for _ in 0..10 {
            let g = generate_table(Domain::Politics, &cfg, &mut rng);
            for c in 0..g.n_cols() {
                let mut vals: Vec<u64> =
                    (0..g.n_rows()).map(|r| g.values[r][c].to_bits()).collect();
                let before = vals.len();
                vals.sort_unstable();
                vals.dedup();
                if vals.len() < before {
                    found = true;
                }
            }
        }
        assert!(found, "collisions should appear with rate 1.0");
    }

    #[test]
    fn aggregatable_cols_exclude_percent_and_rating() {
        let mut rng = rng();
        let g = generate_table(Domain::Environment, &TableGenConfig::default(), &mut rng);
        for c in g.aggregatable_cols() {
            assert!(!matches!(
                g.kinds[c],
                ColumnKind::Percent | ColumnKind::Rating
            ));
        }
    }

    #[test]
    fn health_total_column_sums() {
        let mut rng = StdRng::seed_from_u64(0);
        for _ in 0..20 {
            let g = generate_table(
                Domain::Health,
                &TableGenConfig {
                    caption_scale_rate: 0.0,
                    collision_rate: 0.0,
                    ..Default::default()
                },
                &mut rng,
            );
            if let Some(tc) = g.attrs.iter().position(|a| a == "total") {
                for r in 0..g.n_rows() {
                    let expect: f64 = (0..g.n_cols())
                        .filter(|&c| c != tc)
                        .filter(|&c| {
                            matches!(g.kinds[c], ColumnKind::Count | ColumnKind::SmallCount)
                        })
                        .map(|c| g.values[r][c])
                        .sum();
                    if expect > 0.0 {
                        assert_eq!(g.values[r][tc], expect);
                    }
                }
                return;
            }
        }
    }
}
