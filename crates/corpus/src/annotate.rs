//! Simulated annotator panel (§VII-A).
//!
//! The paper hired 8 annotators who judged mention pairs and classified
//! them by type (exact single cell, sum, average, percentage, difference,
//! ratio, minimum, maximum, unrelated, other), reaching Fleiss κ = 0.6854;
//! pairs confirmed by ≥2 annotators were kept. This module reproduces the
//! process over synthetic gold: each simulated annotator mislabels a pair
//! with a configurable error rate, consensus filters the gold, and κ is
//! *measured* (not assumed) to validate the noise calibration.

use briq_core::training::LabeledDocument;
use briq_ml::fleiss_kappa;
use briq_table::TableMentionKind;
use briq_text::cues::AggregationKind;
use rand::prelude::*;
use rand::rngs::StdRng;

/// The 10 annotation categories of §VII-A.
pub const CATEGORIES: [&str; 10] = [
    "exact",
    "sum",
    "average",
    "percentage",
    "difference",
    "ratio",
    "minimum",
    "maximum",
    "unrelated",
    "other",
];

fn category_of(kind: TableMentionKind) -> usize {
    match kind {
        TableMentionKind::SingleCell => 0,
        TableMentionKind::Aggregate(AggregationKind::Sum) => 1,
        TableMentionKind::Aggregate(AggregationKind::Average) => 2,
        TableMentionKind::Aggregate(AggregationKind::Percentage) => 3,
        TableMentionKind::Aggregate(AggregationKind::Difference) => 4,
        TableMentionKind::Aggregate(AggregationKind::ChangeRatio) => 5,
        TableMentionKind::Aggregate(AggregationKind::Min) => 6,
        TableMentionKind::Aggregate(AggregationKind::Max) => 7,
    }
}

/// Annotator-panel configuration.
#[derive(Debug, Clone, Copy)]
pub struct AnnotatorConfig {
    /// Panel size (paper: 8).
    pub n_annotators: usize,
    /// Probability an annotator assigns a wrong category to a pair.
    pub error_rate: f64,
    /// Minimum annotators confirming the true category to keep a pair
    /// (paper: 2).
    pub min_agreement: usize,
    /// Probability that a kept single-cell label points at a *wrong but
    /// plausible* cell (the annotation mistakes that survive consensus —
    /// at κ = 0.6854 the paper's labels carry real noise, and downstream
    /// models train on it).
    pub corruption_rate: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for AnnotatorConfig {
    fn default() -> Self {
        AnnotatorConfig {
            n_annotators: 8,
            error_rate: 0.07,
            min_agreement: 2,
            corruption_rate: 0.12,
            seed: 7,
        }
    }
}

/// Outcome of the annotation pass.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AnnotationOutcome {
    /// Fleiss' kappa over the panel's category assignments.
    pub kappa: f64,
    /// Gold pairs kept by consensus.
    pub kept: usize,
    /// Gold pairs dropped (confirmed by fewer than `min_agreement`).
    pub dropped: usize,
}

/// Run the simulated panel over `docs`, dropping gold pairs that fail
/// consensus. Returns the outcome statistics.
pub fn annotate(docs: &mut [LabeledDocument], cfg: &AnnotatorConfig) -> AnnotationOutcome {
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let mut ratings: Vec<Vec<usize>> = Vec::new();
    let mut kept = 0usize;
    let mut dropped = 0usize;

    for ld in docs.iter_mut() {
        let mut keep = vec![false; ld.gold.len()];
        for (gi, g) in ld.gold.iter().enumerate() {
            let truth = category_of(g.kind);
            let mut counts = vec![0usize; CATEGORIES.len()];
            for _ in 0..cfg.n_annotators {
                let assigned = if rng.random_bool(cfg.error_rate) {
                    // wrong category: confusions cluster on "unrelated"
                    // and the neighbouring aggregate types
                    if rng.random_bool(0.5) {
                        8 // unrelated
                    } else {
                        let mut c = rng.random_range(0..CATEGORIES.len());
                        if c == truth {
                            c = (c + 1) % CATEGORIES.len();
                        }
                        c
                    }
                } else {
                    truth
                };
                counts[assigned] += 1;
            }
            keep[gi] = counts[truth] >= cfg.min_agreement;
            if keep[gi] {
                kept += 1;
            } else {
                dropped += 1;
            }
            ratings.push(counts);
        }
        let mut it = keep.iter();
        ld.gold.retain(|_| *it.next().unwrap());
    }

    let kappa = fleiss_kappa(&ratings).unwrap_or(0.0);
    AnnotationOutcome {
        kappa,
        kept,
        dropped,
    }
}

/// Inject the annotation mistakes that survive consensus: some
/// single-cell labels point at a neighbouring cell of the same column
/// instead of the true one. Applied to the *training-side* documents —
/// models learn from noisy human labels while the synthetic evaluation
/// can still measure against the true alignments.
pub fn corrupt_labels(docs: &mut [LabeledDocument], cfg: &AnnotatorConfig) -> usize {
    let mut rng = StdRng::seed_from_u64(cfg.seed ^ 0xC0FFEE);
    let mut corrupted = 0usize;
    for ld in docs.iter_mut() {
        for g in ld.gold.iter_mut() {
            if g.kind == TableMentionKind::SingleCell
                && g.cells.len() == 1
                && rng.random_bool(cfg.corruption_rate)
            {
                let (r, c) = g.cells[0];
                if let Some(t) = ld.document.tables.get(g.table) {
                    let candidates: Vec<(usize, usize)> = t
                        .quantities()
                        .map(|(&pos, _)| pos)
                        .filter(|&(rr, cc)| cc == c && rr != r)
                        .collect();
                    if !candidates.is_empty() {
                        g.cells = vec![candidates[rng.random_range(0..candidates.len())]];
                        corrupted += 1;
                    }
                }
            }
        }
    }
    corrupted
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::corpus::{generate_corpus, CorpusConfig};

    #[test]
    fn perfect_annotators_keep_everything() {
        let mut c = generate_corpus(&CorpusConfig::small(1)).documents;
        let before: usize = c.iter().map(|d| d.gold.len()).sum();
        let out = annotate(
            &mut c,
            &AnnotatorConfig {
                error_rate: 0.0,
                ..Default::default()
            },
        );
        assert_eq!(out.kept, before);
        assert_eq!(out.dropped, 0);
        assert!((out.kappa - 1.0).abs() < 1e-9, "kappa {}", out.kappa);
    }

    #[test]
    fn default_panel_reaches_substantial_kappa() {
        // The paper reports κ = 0.6854 ("substantial"); the default noise
        // calibration should land in the substantial band (0.61–0.80).
        let mut c = generate_corpus(&CorpusConfig::small(2)).documents;
        let out = annotate(&mut c, &AnnotatorConfig::default());
        assert!(
            out.kappa > 0.55 && out.kappa < 0.85,
            "kappa {} outside the substantial band",
            out.kappa
        );
        // consensus at ≥2 of 8 keeps almost everything at 7% error
        assert!(
            out.dropped * 50 < out.kept,
            "dropped {} of {}",
            out.dropped,
            out.kept
        );
    }

    #[test]
    fn noisy_annotators_drop_gold() {
        let mut c = generate_corpus(&CorpusConfig::small(3)).documents;
        let before: usize = c.iter().map(|d| d.gold.len()).sum();
        let out = annotate(
            &mut c,
            &AnnotatorConfig {
                error_rate: 0.9,
                ..Default::default()
            },
        );
        assert!(out.dropped > 0);
        let after: usize = c.iter().map(|d| d.gold.len()).sum();
        assert_eq!(after, before - out.dropped);
        assert!(out.kappa < 0.3);
    }

    #[test]
    fn deterministic_under_seed() {
        let mut a = generate_corpus(&CorpusConfig::small(4)).documents;
        let mut b = generate_corpus(&CorpusConfig::small(4)).documents;
        let oa = annotate(&mut a, &AnnotatorConfig::default());
        let ob = annotate(&mut b, &AnnotatorConfig::default());
        assert_eq!(oa, ob);
    }
}
