//! Chaos-family equivalence suite for the alignment store (DESIGN.md
//! §15): across all 8 adversarial perturbation families, incremental
//! re-alignment through a warm [`AlignmentStore`] must be bit-identical
//! to a cold full recompute — alignments, filter-stat totals, kept
//! candidates, and diagnostics. The store is only allowed to change
//! *when* work happens, never what it produces, and the adversarial
//! generators (truncated HTML, colspan bombs, non-finite numerics,
//! regex-hostile text, …) are exactly the inputs where a stale or
//! miskeyed cache would slip through a clean-corpus test.

use briq_core::pipeline::{Briq, BriqConfig};
use briq_core::store::{text_fingerprint, AlignmentStore};
use briq_core::{Budget, Recorder};
use briq_corpus::corpus::{generate_corpus, CorpusConfig};
use briq_corpus::perturb::{adversarial_documents, perturb_document, Adversary, Perturbation};

fn briq() -> Briq {
    Briq::untrained(BriqConfig::default())
}

/// A full-recompute oracle: same model, store disabled, so
/// `align_stored_detailed` falls through to the plain pipeline while
/// returning the same 4-tuple surface (alignments, stats, candidates,
/// diagnostics) as the store path.
fn oracle() -> (Briq, AlignmentStore) {
    let cfg = BriqConfig {
        use_store: false,
        ..BriqConfig::default()
    };
    let briq = Briq::untrained(cfg);
    let store = AlignmentStore::for_system(&briq);
    (briq, store)
}

/// Warm-unchanged: every chaos family's documents, aligned cold through
/// the store and then re-aligned warm, match the full recompute on
/// every output surface — and the warm pass skips classify, filter,
/// and resolve entirely (stage timings stay exactly zero).
#[test]
fn warm_unchanged_matches_full_recompute_across_all_families() {
    let briq = briq();
    let (oracle, ostore) = oracle();
    let budget = Budget::default();
    for kind in Adversary::ALL {
        for seed in [11u64, 29] {
            let docs = adversarial_documents(kind, seed);
            let store = AlignmentStore::for_system(&briq);
            for (i, doc) in docs.iter().enumerate() {
                // Cold pass populates the cache.
                briq.align_stored_detailed(&store, i as u64, doc, &budget);
            }
            for (i, doc) in docs.iter().enumerate() {
                let warm = briq.align_stored_detailed(&store, i as u64, doc, &budget);
                let full = oracle.align_stored_detailed(&ostore, i as u64, doc, &budget);
                assert_eq!(
                    warm.0,
                    full.0,
                    "{}: seed {seed} doc {i} alignments",
                    kind.name()
                );
                assert_eq!(
                    warm.1,
                    full.1,
                    "{}: seed {seed} doc {i} filter stats",
                    kind.name()
                );
                assert_eq!(
                    warm.2,
                    full.2,
                    "{}: seed {seed} doc {i} candidates",
                    kind.name()
                );
                assert_eq!(
                    warm.3.items,
                    full.3.items,
                    "{}: seed {seed} doc {i} diagnostics",
                    kind.name()
                );

                let (_, _, timings) =
                    briq.align_stored(&store, i as u64, doc, &budget, &Recorder::disabled());
                assert_eq!(
                    (
                        timings.classify_s,
                        timings.filter_s,
                        timings.resolve_s,
                        timings.pairs_scored
                    ),
                    (0.0, 0.0, 0.0, 0),
                    "{}: seed {seed} doc {i} warm hit must skip classify/filter/resolve",
                    kind.name()
                );
            }
            if !docs.is_empty() {
                assert!(
                    store.hits() > 0,
                    "{}: seed {seed} no warm hits",
                    kind.name()
                );
            }
        }
    }
}

/// Mutation under stable identity: warm the store on one seed of each
/// family, then serve the *next* seed's documents under the same keys —
/// every content difference must invalidate and re-align to exactly the
/// full recompute, across every output surface.
#[test]
fn mutated_documents_match_full_recompute_across_all_families() {
    let briq = briq();
    let (oracle, ostore) = oracle();
    let budget = Budget::default();
    for kind in Adversary::ALL {
        let seed = 43u64;
        let store = AlignmentStore::for_system(&briq);
        for (i, doc) in adversarial_documents(kind, seed).iter().enumerate() {
            briq.align_stored_detailed(&store, i as u64, doc, &budget);
        }
        let mutated = adversarial_documents(kind, seed + 1);
        for (i, doc) in mutated.iter().enumerate() {
            let inc = briq.align_stored_detailed(&store, i as u64, doc, &budget);
            let full = oracle.align_stored_detailed(&ostore, i as u64, doc, &budget);
            assert_eq!(inc.0, full.0, "{}: mutated doc {i} alignments", kind.name());
            assert_eq!(
                inc.1,
                full.1,
                "{}: mutated doc {i} filter stats",
                kind.name()
            );
            assert_eq!(inc.2, full.2, "{}: mutated doc {i} candidates", kind.name());
            assert_eq!(
                inc.3.items,
                full.3.items,
                "{}: mutated doc {i} diagnostics",
                kind.name()
            );
        }
    }
}

/// The numeral-perturbation families feed the fingerprint contract:
/// perturbing a document changes its text fingerprint iff it changed
/// the text (Original is a no-op; Truncated/Rounded may be no-ops on
/// documents whose numerals are fixed points of the transform).
#[test]
fn perturbation_families_move_text_fingerprint_iff_text_changes() {
    let corpus = generate_corpus(&CorpusConfig {
        n_documents: 24,
        seed: 97,
        ..Default::default()
    });
    let mut changed = 0usize;
    for ld in &corpus.documents {
        for p in Perturbation::ALL {
            let perturbed = perturb_document(ld, p);
            assert_eq!(
                ld.document.text == perturbed.document.text,
                text_fingerprint(&ld.document.text) == text_fingerprint(&perturbed.document.text),
                "{}: fingerprint must change iff text changes",
                p.name()
            );
            if ld.document.text != perturbed.document.text {
                changed += 1;
            }
        }
    }
    assert!(changed > 0, "perturbations never changed any document");
}
