//! Property/invariant tests for the corpus generator: gold alignments
//! must always be realizable by the pipeline's own target generation.

use briq_core::training::matches_target;
use briq_corpus::corpus::{generate_corpus, CorpusConfig, MentionWeights};
use briq_corpus::perturb::{perturb_document, perturb_numeral, Perturbation};
use briq_corpus::tablegen::{generate_table, twin_table, TableGenConfig};
use briq_corpus::Domain;
use briq_table::virtual_cells::{all_table_mentions, VirtualCellConfig};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Every gold alignment of every seed has a generated target and a
    /// span that the text extractor covers.
    #[test]
    fn gold_is_always_realizable(seed in 0u64..5000) {
        let cfg = CorpusConfig { n_documents: 8, seed, ..Default::default() };
        let corpus = generate_corpus(&cfg);
        let vc = VirtualCellConfig::default();
        for ld in &corpus.documents {
            let targets = all_table_mentions(&ld.document.tables, &vc);
            let mentions = briq_text::extract_quantities(&ld.document.text);
            for g in &ld.gold {
                prop_assert!(
                    targets.iter().any(|t| matches_target(g, t)),
                    "seed {seed}: gold {g:?} has no target"
                );
                prop_assert!(
                    mentions.iter().any(|m| m.start < g.mention_end && g.mention_start < m.end),
                    "seed {seed}: gold span not extracted in {:?}",
                    ld.document.text
                );
            }
        }
    }

    /// Twin tables share shape and copy values at the configured rate.
    #[test]
    fn twins_share_structure(seed in 0u64..5000) {
        let mut rng = StdRng::seed_from_u64(seed);
        let cfg = TableGenConfig { twin_copy_rate: 1.0, ..Default::default() };
        let base = generate_table(Domain::Sports, &cfg, &mut rng);
        let twin = twin_table(&base, &cfg, &mut rng);
        prop_assert_eq!(twin.n_rows(), base.n_rows());
        prop_assert_eq!(twin.n_cols(), base.n_cols());
        prop_assert_eq!(&twin.attrs, &base.attrs);
        // copy rate 1.0 → all non-"total" cells equal
        for r in 0..base.n_rows() {
            for c in 0..base.n_cols() {
                if !base.attrs[c].eq_ignore_ascii_case("total") {
                    prop_assert_eq!(twin.values[r][c], base.values[r][c]);
                }
            }
        }
    }

    /// Perturbed numerals stay numerals and move the value by at most one
    /// unit of the removed digit's place.
    #[test]
    fn perturbation_bounds(v in 10u32..10_000_000) {
        let s = v.to_string();
        for p in [Perturbation::Truncated, Perturbation::Rounded] {
            let out = perturb_numeral(&s, p).unwrap();
            let parsed: f64 = out.parse().unwrap();
            prop_assert!((parsed - v as f64).abs() <= 10.0, "{s} -> {out}");
            // ones digit is zeroed
            prop_assert_eq!(parsed as i64 % 10, 0);
        }
    }

    /// Document perturbation preserves gold counts and table contents.
    #[test]
    fn perturbation_preserves_structure(seed in 0u64..3000) {
        let cfg = CorpusConfig { n_documents: 4, seed, ..Default::default() };
        let corpus = generate_corpus(&cfg);
        for ld in &corpus.documents {
            for p in Perturbation::ALL {
                let out = perturb_document(ld, p);
                prop_assert_eq!(out.gold.len(), ld.gold.len());
                prop_assert_eq!(&out.document.tables, &ld.document.tables);
            }
        }
    }

    /// Ranking weights generate min/max gold when requested.
    #[test]
    fn ranking_weight_generates_extended_gold(seed in 0u64..1000) {
        let cfg = CorpusConfig {
            n_documents: 30,
            seed,
            weights: MentionWeights { ranking: 0.4, single: 0.4, ..Default::default() },
            ..Default::default()
        };
        let corpus = generate_corpus(&cfg);
        let has_ranking = corpus.documents.iter().flat_map(|d| &d.gold).any(|g| {
            matches!(g.kind.name(), "min" | "max")
        });
        prop_assert!(has_ranking, "seed {seed} produced no ranking gold");
        // and those targets exist with extended virtual cells enabled
        let vc = VirtualCellConfig { extended: true, ..Default::default() };
        for ld in &corpus.documents {
            let targets = all_table_mentions(&ld.document.tables, &vc);
            for g in ld.gold.iter().filter(|g| matches!(g.kind.name(), "min" | "max")) {
                prop_assert!(targets.iter().any(|t| matches_target(g, t)));
            }
        }
    }
}
