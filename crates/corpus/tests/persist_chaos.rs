//! Crash-recovery chaos suite for the durable alignment store (DESIGN.md
//! §16): across the adversarial perturbation families, a store persisted
//! to disk, destroyed without ceremony (dropped mid-stream, torn at an
//! arbitrary byte, corrupted, or version-skewed), and reopened must
//! recover to a state whose output is bit-identical to a cold full
//! recompute — alignments, filter-stat totals, kept candidates, and
//! diagnostics. Persistence is only allowed to change *when* work
//! happens, never what it produces; the adversarial generators
//! (non-finite numerics, regex-hostile text, colspan bombs, …) are
//! exactly the entries where a lossy codec or a trusted-but-corrupt
//! frame would slip through a clean-corpus test.
//!
//! The SIGKILL-mid-write path itself is driven end-to-end by `ci.sh
//! persist` (a real `briq-serve` process killed with `kill -9` and
//! restarted); these tests cover the same failure surface in-process by
//! dropping stores without snapshots and tearing log bytes directly.

use std::fs;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicUsize, Ordering};

use briq_core::pipeline::{Briq, BriqConfig};
use briq_core::store::persist::{LOG_FILE, MANIFEST_FILE};
use briq_core::store::{AlignmentStore, StoreOptions};
use briq_core::Budget;
use briq_corpus::perturb::{adversarial_documents, Adversary};

static DIR_SEQ: AtomicUsize = AtomicUsize::new(0);

/// A unique scratch store directory, removed on drop.
struct TempDir(PathBuf);

impl TempDir {
    fn new(tag: &str) -> TempDir {
        let n = DIR_SEQ.fetch_add(1, Ordering::Relaxed);
        let dir = std::env::temp_dir().join(format!(
            "briq-persist-chaos-{tag}-{}-{n}",
            std::process::id()
        ));
        let _ = fs::remove_dir_all(&dir);
        TempDir(dir)
    }

    fn path(&self) -> &Path {
        &self.0
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        let _ = fs::remove_dir_all(&self.0);
    }
}

fn briq() -> Briq {
    Briq::untrained(BriqConfig::default())
}

/// A full-recompute oracle: same model, store disabled, so
/// `align_stored_detailed` falls through to the plain pipeline while
/// returning the same 4-tuple output surface as the store path.
fn oracle() -> (Briq, AlignmentStore) {
    let cfg = BriqConfig {
        use_store: false,
        ..BriqConfig::default()
    };
    let briq = Briq::untrained(cfg);
    let store = AlignmentStore::for_system(&briq);
    (briq, store)
}

fn open(briq: &Briq, dir: &Path) -> AlignmentStore {
    AlignmentStore::with_options(
        briq,
        &StoreOptions {
            dir: Some(dir.to_path_buf()),
            ..StoreOptions::default()
        },
    )
    .expect("open persistent store")
}

/// Restart-recovery across every chaos family: align each family's
/// documents through a persistent store, drop it with NO snapshot (the
/// in-process analogue of SIGKILL — only the incrementally-appended
/// novelty log survives), reopen, and re-drive. Every document must be
/// a full hit served bit-identically to the cold oracle.
#[test]
fn restart_recovery_matches_full_recompute_across_all_families() {
    let briq = briq();
    let (oracle, ostore) = oracle();
    let budget = Budget::default();
    for kind in Adversary::ALL {
        let seed = 17u64;
        let docs = adversarial_documents(kind, seed);
        let dir = TempDir::new(kind.name());
        {
            let store = open(&briq, dir.path());
            assert_eq!(store.recovered_entries(), 0);
            for (i, doc) in docs.iter().enumerate() {
                briq.align_stored_detailed(&store, i as u64, doc, &budget);
            }
            // Dropped without store.snapshot(): recovery must come from
            // the novelty log alone.
        }
        let store = open(&briq, dir.path());
        assert_eq!(
            store.recovered_entries(),
            docs.len() as u64,
            "{}: every entry must survive the restart",
            kind.name()
        );
        assert!(!store.recover_truncated(), "{}: clean log", kind.name());
        for (i, doc) in docs.iter().enumerate() {
            let warm = briq.align_stored_detailed(&store, i as u64, doc, &budget);
            let full = oracle.align_stored_detailed(&ostore, i as u64, doc, &budget);
            assert_eq!(
                warm.0,
                full.0,
                "{}: recovered doc {i} alignments",
                kind.name()
            );
            assert_eq!(
                warm.1,
                full.1,
                "{}: recovered doc {i} filter stats",
                kind.name()
            );
            assert_eq!(
                warm.2,
                full.2,
                "{}: recovered doc {i} candidates",
                kind.name()
            );
            assert_eq!(
                warm.3.items,
                full.3.items,
                "{}: recovered doc {i} diagnostics",
                kind.name()
            );
        }
        if !docs.is_empty() {
            assert_eq!(
                store.hits(),
                docs.len() as u64,
                "{}: recovered entries must serve warm (hit rate 1.0)",
                kind.name()
            );
        }
    }
}

/// Torn-tail chaos: persist one family, tear the log at every byte
/// granularity in a coarse sweep, and verify each reopen recovers a
/// valid prefix and re-drives to bit-identical output — the torn
/// suffix simply recomputes cold.
#[test]
fn torn_log_recovers_prefix_and_recomputes_rest() {
    let briq = briq();
    let (oracle, ostore) = oracle();
    let budget = Budget::default();
    let docs = adversarial_documents(Adversary::NonFiniteNumerics, 23);
    assert!(docs.len() >= 2, "family must yield several documents");
    let (pristine, manifest) = {
        let dir = TempDir::new("pristine");
        let store = open(&briq, dir.path());
        for (i, doc) in docs.iter().enumerate() {
            briq.align_stored_detailed(&store, i as u64, doc, &budget);
        }
        (
            fs::read(dir.path().join(LOG_FILE)).expect("read pristine log"),
            fs::read(dir.path().join(MANIFEST_FILE)).expect("read pristine manifest"),
        )
    };
    // Tear at ~8 cut points spread over the record region (past the
    // 24-byte file header so the header itself stays valid).
    let span = pristine.len().saturating_sub(24);
    for step in 1..=8usize {
        let cut = 24 + span * step / 9;
        let dir = TempDir::new(&format!("torn-{step}"));
        fs::create_dir_all(dir.path()).expect("mk store dir");
        fs::write(dir.path().join(MANIFEST_FILE), &manifest).expect("write manifest");
        fs::write(dir.path().join(LOG_FILE), &pristine[..cut]).expect("write torn log");
        let store = open(&briq, dir.path());
        assert!(
            store.recovered_entries() <= docs.len() as u64,
            "cut {cut}: cannot recover more than was written"
        );
        for (i, doc) in docs.iter().enumerate() {
            let got = briq.align_stored_detailed(&store, i as u64, doc, &budget);
            let full = oracle.align_stored_detailed(&ostore, i as u64, doc, &budget);
            assert_eq!(got.0, full.0, "cut {cut}: doc {i} alignments");
            assert_eq!(got.1, full.1, "cut {cut}: doc {i} filter stats");
            assert_eq!(got.2, full.2, "cut {cut}: doc {i} candidates");
            assert_eq!(got.3.items, full.3.items, "cut {cut}: doc {i} diagnostics");
        }
        // After the re-drive repaired the tail, a second restart must
        // recover everything.
        drop(store);
        let store = open(&briq, dir.path());
        assert_eq!(
            store.recovered_entries(),
            docs.len() as u64,
            "cut {cut}: repaired log must recover fully"
        );
    }
}

/// Corruption chaos: flip single bytes at several offsets inside the
/// record region. Every corruption is caught by the frame checksum (or
/// the strict decoder) — recovery keeps the valid prefix, and the
/// re-drive stays bit-identical to the oracle.
#[test]
fn corrupted_log_bytes_never_poison_output() {
    let briq = briq();
    let (oracle, ostore) = oracle();
    let budget = Budget::default();
    let docs = adversarial_documents(Adversary::RegexHostile, 31);
    let (pristine, manifest) = {
        let dir = TempDir::new("corrupt-src");
        let store = open(&briq, dir.path());
        for (i, doc) in docs.iter().enumerate() {
            briq.align_stored_detailed(&store, i as u64, doc, &budget);
        }
        (
            fs::read(dir.path().join(LOG_FILE)).expect("read pristine log"),
            fs::read(dir.path().join(MANIFEST_FILE)).expect("read pristine manifest"),
        )
    };
    let span = pristine.len().saturating_sub(24);
    for step in 1..=6usize {
        let at = 24 + span * step / 7;
        let mut bytes = pristine.clone();
        bytes[at] ^= 0x5A;
        let dir = TempDir::new(&format!("corrupt-{step}"));
        fs::create_dir_all(dir.path()).expect("mk store dir");
        fs::write(dir.path().join(MANIFEST_FILE), &manifest).expect("write manifest");
        fs::write(dir.path().join(LOG_FILE), &bytes).expect("write corrupt log");
        let store = open(&briq, dir.path());
        for (i, doc) in docs.iter().enumerate() {
            let got = briq.align_stored_detailed(&store, i as u64, doc, &budget);
            let full = oracle.align_stored_detailed(&ostore, i as u64, doc, &budget);
            assert_eq!(got.0, full.0, "flip@{at}: doc {i} alignments");
            assert_eq!(got.1, full.1, "flip@{at}: doc {i} filter stats");
            assert_eq!(got.2, full.2, "flip@{at}: doc {i} candidates");
            assert_eq!(got.3.items, full.3.items, "flip@{at}: doc {i} diagnostics");
        }
    }
}

/// Version/model-mismatch chaos: state persisted by a differently
/// configured system is rebuilt, not trusted — the reopened store starts
/// empty and cold output still matches the oracle.
#[test]
fn model_mismatch_rebuilds_and_stays_correct() {
    let (oracle, ostore) = oracle();
    let budget = Budget::default();
    let docs = adversarial_documents(Adversary::MixedLocale, 41);
    let dir = TempDir::new("skew");
    {
        let old = briq();
        let store = open(&old, dir.path());
        for (i, doc) in docs.iter().enumerate() {
            old.align_stored_detailed(&store, i as u64, doc, &budget);
        }
        store.snapshot().expect("snapshot");
    }
    let mut cfg = BriqConfig::default();
    cfg.filter.k_exact += 1; // any config change flips the model fingerprint
    let skewed = Briq::untrained(cfg);
    let store = open(&skewed, dir.path());
    assert_eq!(
        store.recovered_entries(),
        0,
        "a reconfigured model must not trust old artifacts"
    );
    assert!(store.recover_rebuilt());
    let (oracle_skewed, ostore_skewed) = {
        let mut cfg = BriqConfig {
            use_store: false,
            ..BriqConfig::default()
        };
        cfg.filter.k_exact += 1;
        let b = Briq::untrained(cfg);
        let s = AlignmentStore::for_system(&b);
        (b, s)
    };
    for (i, doc) in docs.iter().enumerate() {
        let got = skewed.align_stored_detailed(&store, i as u64, doc, &budget);
        let full = oracle_skewed.align_stored_detailed(&ostore_skewed, i as u64, doc, &budget);
        assert_eq!(got.0, full.0, "skew: doc {i} alignments");
        assert_eq!(got.3.items, full.3.items, "skew: doc {i} diagnostics");
    }
    // Unused in this test but keeps the shared oracle honest: the
    // *original* model's outputs are a different function entirely.
    let _ = (oracle, ostore, budget);
}

/// Eviction under persistence: a byte-bounded persistent store still
/// recovers correctly (the log holds evicted entries; the memory bound
/// re-applies on recovery) and never changes output.
#[test]
fn bounded_persistent_store_matches_oracle_after_restart() {
    let briq = briq();
    let (oracle, ostore) = oracle();
    let budget = Budget::default();
    let docs = adversarial_documents(Adversary::ColspanBomb, 53);
    let dir = TempDir::new("bounded");
    let opts = StoreOptions {
        dir: Some(dir.path().to_path_buf()),
        max_bytes: 1, // evict everything but the newest entry
        ..StoreOptions::default()
    };
    {
        let store = AlignmentStore::with_options(&briq, &opts).expect("open bounded");
        for (i, doc) in docs.iter().enumerate() {
            briq.align_stored_detailed(&store, i as u64, doc, &budget);
        }
        if docs.len() > 1 {
            assert!(store.evictions() > 0, "budget must evict");
            assert_eq!(store.len(), 1, "only the newest entry stays resident");
        }
    }
    let store = AlignmentStore::with_options(&briq, &opts).expect("reopen bounded");
    assert!(
        store.recovered_entries() <= 1,
        "recovery re-applies the memory budget"
    );
    for (i, doc) in docs.iter().enumerate() {
        let got = briq.align_stored_detailed(&store, i as u64, doc, &budget);
        let full = oracle.align_stored_detailed(&ostore, i as u64, doc, &budget);
        assert_eq!(got.0, full.0, "bounded: doc {i} alignments");
        assert_eq!(got.1, full.1, "bounded: doc {i} filter stats");
        assert_eq!(got.2, full.2, "bounded: doc {i} candidates");
        assert_eq!(got.3.items, full.3.items, "bounded: doc {i} diagnostics");
    }
}
