//! # briq
//!
//! Facade crate for the BriQ reproduction ("Bridging Quantities in Tables
//! and Text", ICDE 2019): re-exports the public API of the workspace
//! crates so applications can depend on a single crate.
//!
//! ```
//! use briq::{Briq, BriqConfig, Document, Table};
//!
//! let briq = Briq::untrained(BriqConfig::default());
//! let doc = Document::new(
//!     0,
//!     "A total of 123 patients reported side effects.",
//!     vec![Table::from_grid(
//!         "",
//!         vec![
//!             vec!["effect".into(), "patients".into()],
//!             vec!["Rash".into(), "35".into()],
//!             vec!["Depression".into(), "88".into()],
//!         ],
//!     )],
//! );
//! for a in briq.align(&doc) {
//!     println!("{} -> {:?} ({:.2})", a.mention_raw, a.target.cells, a.score);
//! }
//! ```

pub use briq_core::{
    align_batch, baselines, batch, classifier, context, error, evaluate, features, filtering,
    graph_builder, jaro_winkler, mention, pipeline, resolution, tagger, training, Alignment,
    BatchConfig, BatchReport, Briq, BriqConfig, BriqError, Budget, DegradedAction, Diagnostic,
    Diagnostics, DocReport, FeatureMask, GoldAlignment, Stage, StageTimings, WorkerStats,
};
pub use briq_table::{
    html, segment, stats, virtual_cells, CellRef, Document, Orientation, Table, TableMention,
    TableMentionKind,
};
pub use briq_text::{
    chunker, cues, numparse, pos, quantity, sentence, token, units, AggregationKind,
    ApproxIndicator, QuantityMention, Unit,
};

/// Re-export of the substrate crates for advanced use.
pub mod substrates {
    pub use briq_corpus as corpus;
    pub use briq_graph as graph;
    pub use briq_ml as ml;
    pub use briq_regex as regex;
}
