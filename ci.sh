#!/usr/bin/env bash
# Staged offline CI gate for the BriQ workspace.
#
#   ./ci.sh                 run every stage
#   ./ci.sh <stage>...      run only the named stages, in the given order
#   ./ci.sh help            list stages
#   ./ci.sh --list          print one stage name per line (for tooling)
#
# Unknown stage names are rejected before ANY stage runs, even when mixed
# with valid ones.
#
# Stages:
#   fmt          cargo fmt --all --check (formatting is part of the gate)
#   clippy       cargo clippy -D warnings; the hardened crates (briq-regex,
#                briq-text, briq-table, briq-graph, briq-core) additionally
#                deny unwrap_used/expect_used in non-test code, so clippy
#                enforces the panic-free policy too
#   build        release build of the whole workspace
#   test         full test suite, including the chaos fault-injection
#                harness in tests/chaos.rs, the batch-engine unit tests,
#                and the kernel-equivalence suites (CSR-vs-dense RWR
#                proptests in crates/graph/tests/csr_equivalence.rs,
#                lane-vs-block forest proptests in briq-ml, and the
#                arena steady-state allocation test)
#   bench-smoke  throughput smoke of the batch engine on a seeded corpus at
#                --jobs 1 and --jobs $(nproc); writes BENCH_throughput.json
#                (docs/min, per-stage timings incl. classify seconds and
#                pairs scored, host cores, requested vs effective jobs) as
#                the tracked perf-trajectory artifact. On hosts with >= 4
#                cores the stage fails if the --jobs speedup drops below
#                $SPEEDUP_MIN (default 2.0); on single-core hosts the
#                speedup field is null and the gate is skipped, since no
#                honest parallel ratio exists there (the per-point
#                utilization fields go null the same way; the speedup awk
#                only matches "speedup" lines, so they never confuse the
#                gate). Also runs the classifier hot-path microbench
#                (bench_classifier) and reports its scored-pairs/sec line
#                plus the dedup+prune engine line
#                (classifier-throughput-deduped) — never gating, the
#                absolute numbers are host-dependent. Gates on the
#                retrieval index: the artifact's retrieval_recall must be
#                exactly 1.0 vs the exhaustive oracle and
#                candidates_per_mention strictly below cells_per_mention.
#   perf-trend   tools/bench_trend.sh: diff the fresh BENCH_throughput.json
#                against the committed one (git show HEAD:...) and fail on
#                an extract-stage, classify-stage, resolve-stage, OR
#                store-recovery (store.persist.recover_s) regression
#                beyond $TREND_TOL percent (default 25, same
#                tolerance for all gates). Refuses to compare runs whose
#                index_enabled states differ; skips loudly when HEAD has
#                no artifact or one predating the compared schema fields.
#   determinism  briq-align over the same seeded page corpus five times:
#                --jobs 1, --jobs $(nproc or 8), --jobs 1 with
#                BRIQ_NO_PRUNE=1 (bound-based pruning disabled), --jobs 1
#                with --trace/--metrics (observability recording on), and
#                --jobs 1 with BRIQ_NO_INDEX=1 (exhaustive candidate
#                pairing, no retrieval index); fails unless alignment
#                stdout and the diagnostics JSONL (which carries no
#                timings) are byte-for-byte identical across all five —
#                worker count, pruning, tracing, AND the retrieval index
#                must be unobservable in the output. The traced run's
#                trace file must also be non-empty valid-ish JSON.
#   kernels      briq-align --json over the same seeded corpus three
#                times: default (CSR walk + lane traversal), BRIQ_NO_CSR=1
#                (dense adjacency RWR oracle), and BRIQ_NO_LANES=1
#                (row-at-a-time forest oracle); alignment stdout and the
#                diagnostics JSONL must be byte-for-byte identical, so
#                both fast-path kernels are provably unobservable in real
#                output, not just in unit proptests
#   store        incremental-vs-oracle equivalence of the versioned
#                alignment store (DESIGN.md §15). Two checks on a seeded
#                corpus: (a) unchanged corpus — briq-align --repeat 2
#                against one warm store must byte-match a BRIQ_NO_STORE=1
#                full recompute in stdout and diagnostics JSONL, and the
#                warm repetition's stderr line must report hit_rate 1.000
#                (every document served from cache); (b) mutated corpus —
#                warm the store from the pristine corpus (--warm-from),
#                rewrite digits in a few pages, and the incremental run
#                over the mutated directory must byte-match the full
#                recompute while reporting >= 1 store hit AND >= 1
#                invalidation (both cache service and re-alignment
#                actually happened).
#   persist      durability gate for the on-disk store (DESIGN.md §16).
#                Byte-compares a cold BRIQ_NO_STORE=1 oracle against (1) a
#                fresh --store-dir run, (2) a restart-warmed run in a new
#                process over the same directory (which must recover every
#                entry and report hit_rate 1.000 / mentions_realigned 0),
#                and (3) a run over a log whose tail was deliberately torn
#                with garbage bytes (which must truncate and recompute,
#                never fail). Then crash-tests briq-serve: a durable
#                server is driven, SIGKILLed without drain (kill -9, so
#                only the incrementally-appended novelty log survives),
#                rebooted on the same --store-dir, must report
#                store_recovered_entries >= 1 on /health, serve the
#                unchanged re-drive entirely from cache (store_hits equal
#                to the page count), match the oracle byte for byte on the
#                wire, and persist a snapshot on clean drain.
#   serve        boots the persistent alignment server (briq-serve) on a
#                loopback port, byte-compares the drive client's output
#                against briq-align --json over the same seeded corpus
#                (the wire path must not drift from the batch path), runs
#                the fault-injecting chaos client against it, then floods
#                a deliberately tiny server (--workers 1 --queue-depth 1)
#                with chaos --expect-shed to prove admission control
#                sheds deterministically under overload. Both servers
#                must drain cleanly (exit 0 and a "drained:" line) on
#                stop. See OPERATIONS.md §9.
#   docs         cargo doc --workspace --no-deps with RUSTDOCFLAGS set to
#                -D warnings: every rustdoc warning (broken intra-doc
#                link, missing docs where #![warn(missing_docs)] is on)
#                fails the gate.
#
# Every stage prints its wall-clock; a summary table is printed at the end.
set -uo pipefail
cd "$(dirname "$0")"

NPROC="$(nproc 2>/dev/null || echo 1)"
SPEEDUP_MIN="${SPEEDUP_MIN:-2.0}"
BENCH_DOCS="${BENCH_DOCS:-60}"
BENCH_SEED="${BENCH_SEED:-20190408}"
ALL_STAGES=(fmt clippy build test docs bench-smoke perf-trend determinism kernels store persist serve)

# Set once bench-smoke has written a fresh BENCH_throughput.json, so a
# later perf-trend stage in the same invocation reuses it instead of
# re-measuring.
BENCH_FRESH=0

stage_fmt() {
    cargo fmt --all --check
}

stage_clippy() {
    cargo clippy --offline --workspace -q -- -D warnings
}

stage_build() {
    cargo build --offline --release
}

stage_test() {
    cargo test --offline --workspace -q
}

stage_docs() {
    RUSTDOCFLAGS="-D warnings" cargo doc --offline --workspace --no-deps -q
}

stage_bench_smoke() {
    cargo build --offline --release -q -p briq-bench || return 1
    ./target/release/briq-eval throughput \
        --docs "$BENCH_DOCS" --seed "$BENCH_SEED" --jobs "$NPROC" \
        --out BENCH_throughput.json || return 1
    BENCH_FRESH=1
    # Retrieval-index gates: the smoke must measure the indexed path,
    # its recall vs the exhaustive oracle must be exactly 1.0, and the
    # retrieved candidate sets must be strictly smaller than exhaustive
    # pairing on this corpus.
    local idx_on recall cpm cells
    idx_on="$(awk -F': ' '/"index_enabled"/ {gsub(/,/, "", $2); print $2; exit}' BENCH_throughput.json)"
    recall="$(awk -F': ' '/"retrieval_recall"/ {gsub(/,/, "", $2); print $2; exit}' BENCH_throughput.json)"
    cpm="$(awk -F': ' '/"candidates_per_mention"/ {gsub(/,/, "", $2); print $2; exit}' BENCH_throughput.json)"
    cells="$(awk -F': ' '/"cells_per_mention"/ {gsub(/,/, "", $2); print $2; exit}' BENCH_throughput.json)"
    if [ "$idx_on" != "true" ]; then
        echo "bench-smoke: retrieval index is off (BRIQ_NO_INDEX set?); the smoke must measure the indexed path" >&2
        return 1
    fi
    awk -v r="$recall" 'BEGIN { exit !(r == 1) }' || {
        echo "bench-smoke: retrieval recall ${recall:-missing} is not exactly 1.0 vs the exhaustive oracle" >&2
        return 1
    }
    awk -v c="$cpm" -v n="$cells" 'BEGIN { exit !(c > 0 && c < n) }' || {
        echo "bench-smoke: candidates/mention ${cpm:-missing} not strictly below cells/mention ${cells:-missing}" >&2
        return 1
    }
    echo "bench-smoke: retrieval recall $recall; $cpm candidates/mention vs $cells cells/mention exhaustive"
    local speedup
    speedup="$(awk -F': ' '/"speedup"/ {gsub(/[,"]/, "", $2); print $2}' BENCH_throughput.json)"
    if [ -z "$speedup" ]; then
        echo "bench-smoke: no speedup field in BENCH_throughput.json" >&2
        return 1
    fi
    if [ "$speedup" = "null" ]; then
        echo "bench-smoke: speedup gate skipped (single-core host: no parallel ratio recorded)"
    elif [ "$NPROC" -ge 4 ]; then
        awk -v s="$speedup" -v min="$SPEEDUP_MIN" 'BEGIN { exit !(s >= min) }' || {
            echo "bench-smoke: speedup ${speedup}x at --jobs $NPROC is below ${SPEEDUP_MIN}x" >&2
            return 1
        }
        echo "bench-smoke: speedup ${speedup}x at --jobs $NPROC (gate: >= ${SPEEDUP_MIN}x)"
    else
        echo "bench-smoke: speedup ${speedup}x at --jobs $NPROC (host has $NPROC core(s); gate needs >= 4)"
    fi
    # Classifier hot-path microbench: report scored-pairs/sec and the
    # dedup+prune engine comparison, never gate — absolute throughput
    # varies with the host.
    local clf_out clf_line dedup_line
    clf_out="$(cargo bench --offline -q -p briq-bench --bench bench_classifier 2>/dev/null)"
    clf_line="$(printf '%s\n' "$clf_out" | grep '^classifier-throughput ' | tail -1)"
    dedup_line="$(printf '%s\n' "$clf_out" | grep '^classifier-throughput-deduped ' | tail -1)"
    if [ -n "$clf_line" ]; then
        echo "bench-smoke: $clf_line"
    else
        echo "bench-smoke: classifier microbench produced no throughput line" >&2
        return 1
    fi
    if [ -n "$dedup_line" ]; then
        echo "bench-smoke: $dedup_line"
    else
        echo "bench-smoke: classifier microbench produced no deduped-engine line" >&2
        return 1
    fi
}

stage_perf_trend() {
    # With a fresh artifact from an earlier bench-smoke stage in this
    # invocation, compare it directly; otherwise bench_trend.sh measures
    # its own fresh point into a temp file (the committed artifact is
    # never overwritten by this stage).
    if [ "$BENCH_FRESH" = "1" ]; then
        ./tools/bench_trend.sh BENCH_throughput.json
    else
        ./tools/bench_trend.sh
    fi
}

stage_determinism() {
    cargo build --offline --release -q -p briq-bench || return 1
    local dir jobs_hi rc1 rc2 rc_np
    dir="$(mktemp -d)"
    trap 'rm -rf "$dir"' RETURN
    jobs_hi=$(( NPROC > 1 ? NPROC : 8 ))
    ./target/release/briq-align --gen-corpus "$dir/corpus" \
        --docs "$BENCH_DOCS" --seed "$BENCH_SEED" || return 1

    ./target/release/briq-align --batch "$dir/corpus" --jobs 1 --json \
        --diagnostics "$dir/diag_1.jsonl" > "$dir/out_1.json"
    rc1=$?
    ./target/release/briq-align --batch "$dir/corpus" --jobs "$jobs_hi" --json \
        --diagnostics "$dir/diag_n.jsonl" > "$dir/out_n.json"
    rc2=$?
    # 0 (clean) and 2 (degraded-but-complete) are both valid outcomes, but
    # they must agree across worker counts like everything else.
    if [ "$rc1" -ne "$rc2" ] || { [ "$rc1" -ne 0 ] && [ "$rc1" -ne 2 ]; }; then
        echo "determinism: exit codes diverged or failed (jobs 1: $rc1, jobs $jobs_hi: $rc2)" >&2
        return 1
    fi
    cmp -s "$dir/out_1.json" "$dir/out_n.json" || {
        echo "determinism: alignment output differs between --jobs 1 and --jobs $jobs_hi" >&2
        diff "$dir/out_1.json" "$dir/out_n.json" | head -20 >&2
        return 1
    }
    cmp -s "$dir/diag_1.jsonl" "$dir/diag_n.jsonl" || {
        echo "determinism: diagnostics JSONL differs between --jobs 1 and --jobs $jobs_hi" >&2
        diff "$dir/diag_1.jsonl" "$dir/diag_n.jsonl" | head -20 >&2
        return 1
    }
    # Third run with bound-based pruning disabled: the pruning engine must
    # be unobservable in the output, not just across worker counts.
    BRIQ_NO_PRUNE=1 ./target/release/briq-align --batch "$dir/corpus" --jobs 1 --json \
        --diagnostics "$dir/diag_np.jsonl" > "$dir/out_np.json"
    rc_np=$?
    if [ "$rc_np" -ne "$rc1" ]; then
        echo "determinism: exit code diverged with BRIQ_NO_PRUNE=1 ($rc_np vs $rc1)" >&2
        return 1
    fi
    cmp -s "$dir/out_1.json" "$dir/out_np.json" || {
        echo "determinism: alignment output differs with BRIQ_NO_PRUNE=1" >&2
        diff "$dir/out_1.json" "$dir/out_np.json" | head -20 >&2
        return 1
    }
    cmp -s "$dir/diag_1.jsonl" "$dir/diag_np.jsonl" || {
        echo "determinism: diagnostics JSONL differs with BRIQ_NO_PRUNE=1" >&2
        diff "$dir/diag_1.jsonl" "$dir/diag_np.jsonl" | head -20 >&2
        return 1
    }
    # Fourth run with observability recording on: spans/metrics are
    # observation-only, so the traced run must match byte for byte too,
    # and must actually produce the trace and metrics artifacts.
    local rc_tr
    ./target/release/briq-align --batch "$dir/corpus" --jobs 1 --json \
        --diagnostics "$dir/diag_tr.jsonl" \
        --trace "$dir/trace.json" --metrics "$dir/metrics.jsonl" \
        > "$dir/out_tr.json" 2> /dev/null
    rc_tr=$?
    if [ "$rc_tr" -ne "$rc1" ]; then
        echo "determinism: exit code diverged with --trace/--metrics ($rc_tr vs $rc1)" >&2
        return 1
    fi
    cmp -s "$dir/out_1.json" "$dir/out_tr.json" || {
        echo "determinism: alignment output differs with --trace/--metrics on" >&2
        diff "$dir/out_1.json" "$dir/out_tr.json" | head -20 >&2
        return 1
    }
    cmp -s "$dir/diag_1.jsonl" "$dir/diag_tr.jsonl" || {
        echo "determinism: diagnostics JSONL differs with --trace/--metrics on" >&2
        diff "$dir/diag_1.jsonl" "$dir/diag_tr.jsonl" | head -20 >&2
        return 1
    }
    grep -q '"traceEvents"' "$dir/trace.json" || {
        echo "determinism: trace file missing traceEvents" >&2
        return 1
    }
    grep -q '"pairs_scored"' "$dir/metrics.jsonl" || {
        echo "determinism: metrics JSONL missing pairs_scored" >&2
        return 1
    }
    # Fifth run with the retrieval index disabled: the exhaustive oracle
    # must produce byte-identical alignments and diagnostics, so the
    # index is provably unobservable in output (same discipline as the
    # BRIQ_NO_PRUNE cross-check).
    local rc_ni
    BRIQ_NO_INDEX=1 ./target/release/briq-align --batch "$dir/corpus" --jobs 1 --json \
        --diagnostics "$dir/diag_ni.jsonl" > "$dir/out_ni.json"
    rc_ni=$?
    if [ "$rc_ni" -ne "$rc1" ]; then
        echo "determinism: exit code diverged with BRIQ_NO_INDEX=1 ($rc_ni vs $rc1)" >&2
        return 1
    fi
    cmp -s "$dir/out_1.json" "$dir/out_ni.json" || {
        echo "determinism: alignment output differs with BRIQ_NO_INDEX=1" >&2
        diff "$dir/out_1.json" "$dir/out_ni.json" | head -20 >&2
        return 1
    }
    cmp -s "$dir/diag_1.jsonl" "$dir/diag_ni.jsonl" || {
        echo "determinism: diagnostics JSONL differs with BRIQ_NO_INDEX=1" >&2
        diff "$dir/diag_1.jsonl" "$dir/diag_ni.jsonl" | head -20 >&2
        return 1
    }
    echo "determinism: --jobs 1, --jobs $jobs_hi, BRIQ_NO_PRUNE=1, --trace/--metrics, and BRIQ_NO_INDEX=1 byte-identical ($(wc -c < "$dir/out_1.json") bytes of alignments)"
}

stage_kernels() {
    cargo build --offline --release -q -p briq-bench || return 1
    local dir rc_def rc_nc rc_nl
    dir="$(mktemp -d)"
    trap 'rm -rf "$dir"' RETURN
    ./target/release/briq-align --gen-corpus "$dir/corpus" \
        --docs "$BENCH_DOCS" --seed "$BENCH_SEED" || return 1

    ./target/release/briq-align --batch "$dir/corpus" --jobs 1 --json \
        --diagnostics "$dir/diag_def.jsonl" > "$dir/out_def.json"
    rc_def=$?
    if [ "$rc_def" -ne 0 ] && [ "$rc_def" -ne 2 ]; then
        echo "kernels: default run failed (exit $rc_def)" >&2
        return 1
    fi
    # CSR oracle: the dense adjacency random walk must be byte-identical.
    BRIQ_NO_CSR=1 ./target/release/briq-align --batch "$dir/corpus" --jobs 1 --json \
        --diagnostics "$dir/diag_nc.jsonl" > "$dir/out_nc.json"
    rc_nc=$?
    if [ "$rc_nc" -ne "$rc_def" ]; then
        echo "kernels: exit code diverged with BRIQ_NO_CSR=1 ($rc_nc vs $rc_def)" >&2
        return 1
    fi
    cmp -s "$dir/out_def.json" "$dir/out_nc.json" || {
        echo "kernels: alignment output differs with BRIQ_NO_CSR=1" >&2
        diff "$dir/out_def.json" "$dir/out_nc.json" | head -20 >&2
        return 1
    }
    cmp -s "$dir/diag_def.jsonl" "$dir/diag_nc.jsonl" || {
        echo "kernels: diagnostics JSONL differs with BRIQ_NO_CSR=1" >&2
        diff "$dir/diag_def.jsonl" "$dir/diag_nc.jsonl" | head -20 >&2
        return 1
    }
    # Lane oracle: row-at-a-time forest traversal must be byte-identical.
    BRIQ_NO_LANES=1 ./target/release/briq-align --batch "$dir/corpus" --jobs 1 --json \
        --diagnostics "$dir/diag_nl.jsonl" > "$dir/out_nl.json"
    rc_nl=$?
    if [ "$rc_nl" -ne "$rc_def" ]; then
        echo "kernels: exit code diverged with BRIQ_NO_LANES=1 ($rc_nl vs $rc_def)" >&2
        return 1
    fi
    cmp -s "$dir/out_def.json" "$dir/out_nl.json" || {
        echo "kernels: alignment output differs with BRIQ_NO_LANES=1" >&2
        diff "$dir/out_def.json" "$dir/out_nl.json" | head -20 >&2
        return 1
    }
    cmp -s "$dir/diag_def.jsonl" "$dir/diag_nl.jsonl" || {
        echo "kernels: diagnostics JSONL differs with BRIQ_NO_LANES=1" >&2
        diff "$dir/diag_def.jsonl" "$dir/diag_nl.jsonl" | head -20 >&2
        return 1
    }
    echo "kernels: default, BRIQ_NO_CSR=1, and BRIQ_NO_LANES=1 byte-identical ($(wc -c < "$dir/out_def.json") bytes of alignments)"
}

stage_store() {
    cargo build --offline --release -q -p briq-bench || return 1
    local dir rc_st rc_ns rc_inc rc_full
    dir="$(mktemp -d)"
    trap 'rm -rf "$dir"' RETURN
    ./target/release/briq-align --gen-corpus "$dir/corpus" \
        --docs "$BENCH_DOCS" --seed "$BENCH_SEED" || return 1

    # (a) Unchanged corpus: two repetitions against one warm store vs the
    # BRIQ_NO_STORE=1 full-recompute oracle. Stdout and diagnostics must
    # be byte-identical, and the second repetition must be served
    # entirely from cache (hit rate exactly 1.000, zero realignments).
    ./target/release/briq-align --batch "$dir/corpus" --jobs 1 --json --repeat 2 \
        --diagnostics "$dir/diag_st.jsonl" > "$dir/out_st.json" 2> "$dir/err_st.txt"
    rc_st=$?
    BRIQ_NO_STORE=1 ./target/release/briq-align --batch "$dir/corpus" --jobs 1 --json \
        --diagnostics "$dir/diag_ns.jsonl" > "$dir/out_ns.json"
    rc_ns=$?
    if [ "$rc_st" -ne "$rc_ns" ] || { [ "$rc_st" -ne 0 ] && [ "$rc_st" -ne 2 ]; }; then
        echo "store: exit codes diverged or failed (store: $rc_st, BRIQ_NO_STORE=1: $rc_ns)" >&2
        return 1
    fi
    cmp -s "$dir/out_st.json" "$dir/out_ns.json" || {
        echo "store: alignment output differs between warm store and BRIQ_NO_STORE=1" >&2
        diff "$dir/out_st.json" "$dir/out_ns.json" | head -20 >&2
        return 1
    }
    cmp -s "$dir/diag_st.jsonl" "$dir/diag_ns.jsonl" || {
        echo "store: diagnostics JSONL differs between warm store and BRIQ_NO_STORE=1" >&2
        diff "$dir/diag_st.jsonl" "$dir/diag_ns.jsonl" | head -20 >&2
        return 1
    }
    grep -q 'store: repeat 2/2 .* hit_rate 1\.000 .* mentions_realigned 0$' "$dir/err_st.txt" || {
        echo "store: warm repetition was not served entirely from cache:" >&2
        grep '^store:' "$dir/err_st.txt" >&2
        return 1
    }

    # (b) Mutated corpus: warm from the pristine pages, rewrite every
    # digit in the first three pages, then compare the incremental run
    # to the full recompute — and require that the run both served
    # cached documents (hits >= 1) and invalidated the mutated ones
    # (invalidations >= 1), so the equivalence really exercised the
    # incremental path rather than degenerating to all-cold or all-warm.
    cp -r "$dir/corpus" "$dir/mutated"
    local n=0 f
    for f in "$dir/mutated"/*.html; do
        sed -i 'y/0123456789/1234567890/' "$f"
        n=$((n + 1))
        [ "$n" -ge 3 ] && break
    done
    ./target/release/briq-align --warm-from "$dir/corpus" --batch "$dir/mutated" \
        --jobs 1 --json --diagnostics "$dir/diag_inc.jsonl" \
        > "$dir/out_inc.json" 2> "$dir/err_inc.txt"
    rc_inc=$?
    BRIQ_NO_STORE=1 ./target/release/briq-align --batch "$dir/mutated" --jobs 1 --json \
        --diagnostics "$dir/diag_full.jsonl" > "$dir/out_full.json"
    rc_full=$?
    if [ "$rc_inc" -ne "$rc_full" ]; then
        echo "store: exit codes diverged on the mutated corpus (incremental: $rc_inc, full: $rc_full)" >&2
        return 1
    fi
    cmp -s "$dir/out_inc.json" "$dir/out_full.json" || {
        echo "store: incremental re-alignment differs from full recompute on the mutated corpus" >&2
        diff "$dir/out_inc.json" "$dir/out_full.json" | head -20 >&2
        return 1
    }
    cmp -s "$dir/diag_inc.jsonl" "$dir/diag_full.jsonl" || {
        echo "store: diagnostics JSONL differs from full recompute on the mutated corpus" >&2
        diff "$dir/diag_inc.jsonl" "$dir/diag_full.jsonl" | head -20 >&2
        return 1
    }
    awk '/^store: repeat 1\/1 / {
        for (i = 1; i <= NF; i++) {
            if ($i == "hits") hits = $(i + 1)
            if ($i == "invalidations") inv = $(i + 1)
        }
        ok = (hits >= 1 && inv >= 1)
    }
    END { exit !ok }' "$dir/err_inc.txt" || {
        echo "store: mutated run did not both hit (>=1) and invalidate (>=1):" >&2
        grep '^store:' "$dir/err_inc.txt" >&2
        return 1
    }
    echo "store: warm-unchanged and mutated-incremental runs byte-identical to BRIQ_NO_STORE=1 ($(grep -c 'store: repeat' "$dir/err_st.txt" "$dir/err_inc.txt" | awk -F: '{s+=$NF} END {print s}') store reports checked)"
}

# Send one JSONL request to the server at $1 over bash's /dev/tcp and
# print the single response line. Used by stage_persist to inspect
# /health and /metrics without a dedicated client binary.
serve_request() {
    local addr="$1" body="$2"
    {
        printf '%s\n' "$body" >&3
        head -1 <&3
    } 3<>"/dev/tcp/${addr%:*}/${addr##*:}"
}

stage_persist() {
    cargo build --offline --release -q -p briq-bench || return 1
    local dir rc_cold rc_run health metrics recovered hits pages
    dir="$(mktemp -d)"
    trap 'rm -rf "$dir"; [ -n "${SERVE_PID:-}" ] && kill -9 "$SERVE_PID" 2>/dev/null' RETURN
    ./target/release/briq-align --gen-corpus "$dir/corpus" \
        --docs "$BENCH_DOCS" --seed "$BENCH_SEED" || return 1

    # (a) Cold full-recompute oracle: the store disabled entirely, so no
    # cached or recovered state can possibly contribute to this output.
    BRIQ_NO_STORE=1 ./target/release/briq-align --batch "$dir/corpus" --jobs 1 --json \
        --diagnostics "$dir/diag_cold.jsonl" > "$dir/out_cold.json"
    rc_cold=$?
    if [ "$rc_cold" -ne 0 ] && [ "$rc_cold" -ne 2 ]; then
        echo "persist: cold oracle run failed (exit $rc_cold)" >&2
        return 1
    fi

    # (b) First durable run into an empty --store-dir: byte-identical to
    # the oracle, and it must actually persist its entries on exit.
    ./target/release/briq-align --batch "$dir/corpus" --jobs 1 --json \
        --store-dir "$dir/store" --diagnostics "$dir/diag_first.jsonl" \
        > "$dir/out_first.json" 2> "$dir/err_first.txt"
    rc_run=$?
    if [ "$rc_run" -ne "$rc_cold" ]; then
        echo "persist: exit code diverged on the first durable run ($rc_run vs $rc_cold)" >&2
        return 1
    fi
    cmp -s "$dir/out_first.json" "$dir/out_cold.json" || {
        echo "persist: first durable run differs from the BRIQ_NO_STORE=1 oracle" >&2
        diff "$dir/out_first.json" "$dir/out_cold.json" | head -20 >&2
        return 1
    }
    cmp -s "$dir/diag_first.jsonl" "$dir/diag_cold.jsonl" || {
        echo "persist: diagnostics differ on the first durable run" >&2
        return 1
    }
    grep -q '^store: persisted ' "$dir/err_first.txt" || {
        echo "persist: first durable run reported no persisted snapshot:" >&2
        grep '^store:' "$dir/err_first.txt" >&2
        return 1
    }

    # (c) Restart-warmed run in a NEW process over the same directory:
    # must recover every entry, serve the unchanged corpus entirely from
    # cache, and still byte-match the cold oracle.
    ./target/release/briq-align --batch "$dir/corpus" --jobs 1 --json \
        --store-dir "$dir/store" --diagnostics "$dir/diag_warm.jsonl" \
        > "$dir/out_warm.json" 2> "$dir/err_warm.txt"
    rc_run=$?
    if [ "$rc_run" -ne "$rc_cold" ]; then
        echo "persist: exit code diverged on the restart-warmed run ($rc_run vs $rc_cold)" >&2
        return 1
    fi
    cmp -s "$dir/out_warm.json" "$dir/out_cold.json" || {
        echo "persist: restart-warmed output differs from the BRIQ_NO_STORE=1 oracle" >&2
        diff "$dir/out_warm.json" "$dir/out_cold.json" | head -20 >&2
        return 1
    }
    cmp -s "$dir/diag_warm.jsonl" "$dir/diag_cold.jsonl" || {
        echo "persist: diagnostics differ on the restart-warmed run" >&2
        return 1
    }
    grep -q '^store: recovered ' "$dir/err_warm.txt" || {
        echo "persist: restart-warmed run reported no recovery:" >&2
        grep '^store:' "$dir/err_warm.txt" >&2
        return 1
    }
    grep -q 'store: repeat 1/1 .* hit_rate 1\.000 .* mentions_realigned 0$' "$dir/err_warm.txt" || {
        echo "persist: restart-warmed run was not served entirely from the recovered store:" >&2
        grep '^store:' "$dir/err_warm.txt" >&2
        return 1
    }

    # (d) Torn-tail smoke: append garbage to the novelty log. The next
    # run must truncate the torn tail, recompute whatever was lost, and
    # still byte-match the oracle — corruption costs time, never bits.
    printf 'torn-tail-garbage-not-a-frame' >> "$dir/store/novelty.log"
    ./target/release/briq-align --batch "$dir/corpus" --jobs 1 --json \
        --store-dir "$dir/store" --diagnostics "$dir/diag_torn.jsonl" \
        > "$dir/out_torn.json" 2> "$dir/err_torn.txt"
    rc_run=$?
    if [ "$rc_run" -ne "$rc_cold" ]; then
        echo "persist: exit code diverged after log corruption ($rc_run vs $rc_cold)" >&2
        return 1
    fi
    cmp -s "$dir/out_torn.json" "$dir/out_cold.json" || {
        echo "persist: output differs after torn-tail log corruption" >&2
        diff "$dir/out_torn.json" "$dir/out_cold.json" | head -20 >&2
        return 1
    }
    grep -q 'torn tail truncated' "$dir/err_torn.txt" || {
        echo "persist: corrupted log was not reported as truncated:" >&2
        grep '^store:' "$dir/err_torn.txt" >&2
        return 1
    }

    # (e) Serve crash-recovery: drive a durable server, SIGKILL it with
    # no drain (only the incrementally-appended log survives), reboot it
    # on the same --store-dir, and require full recovery: /health
    # reports the recovered entries, the unchanged re-drive is served
    # entirely from cache, the wire output byte-matches a cold
    # BRIQ_NO_STORE=1 batch run, and the clean drain persists a snapshot.
    # Note: --docs counts documents, not page files; the store caches
    # per document, so the expected hit count is the document count.
    pages=12
    ./target/release/briq-align --gen-corpus "$dir/pages" \
        --docs "$pages" --seed "$BENCH_SEED" || return 1
    BRIQ_NO_STORE=1 ./target/release/briq-align --json "$dir/pages"/*.html \
        > "$dir/out_batch.json" 2> /dev/null
    boot_server "$dir/serve1.log" --store-dir "$dir/sstore" || return 1
    ./target/release/briq-serve drive --addr "$SERVE_ADDR" "$dir/pages"/*.html \
        > "$dir/out_drive1.json" 2> /dev/null
    cmp -s "$dir/out_drive1.json" "$dir/out_batch.json" || {
        echo "persist: durable server wire output differs from the cold batch run" >&2
        diff "$dir/out_drive1.json" "$dir/out_batch.json" | head -20 >&2
        return 1
    }
    kill -9 "$SERVE_PID"
    wait "$SERVE_PID" 2> /dev/null
    SERVE_PID=""
    boot_server "$dir/serve2.log" --store-dir "$dir/sstore" || return 1
    health="$(serve_request "$SERVE_ADDR" '{"op":"health"}')"
    printf '%s' "$health" | grep -q '"store_persisted":true' || {
        echo "persist: rebooted server does not report store_persisted:true: $health" >&2
        return 1
    }
    recovered="$(printf '%s' "$health" | grep -o '"store_recovered_entries":[0-9][0-9.]*' | cut -d: -f2)"
    awk -v r="${recovered:-0}" 'BEGIN { exit !(r >= 1) }' || {
        echo "persist: rebooted server recovered ${recovered:-no} entries after SIGKILL: $health" >&2
        return 1
    }
    ./target/release/briq-serve drive --addr "$SERVE_ADDR" "$dir/pages"/*.html \
        > "$dir/out_drive2.json" 2> /dev/null
    cmp -s "$dir/out_drive2.json" "$dir/out_batch.json" || {
        echo "persist: recovered server wire output differs from the cold batch run" >&2
        diff "$dir/out_drive2.json" "$dir/out_batch.json" | head -20 >&2
        return 1
    }
    metrics="$(serve_request "$SERVE_ADDR" '{"op":"metrics"}')"
    hits="$(printf '%s' "$metrics" | grep -o '"store_hits":[0-9][0-9.]*' | cut -d: -f2)"
    awk -v h="${hits:-0}" -v n="$pages" 'BEGIN { exit !(h == n) }' || {
        echo "persist: re-drive after recovery was not all cache hits (store_hits ${hits:-0} of $pages)" >&2
        return 1
    }
    stop_server "$SERVE_ADDR" "$SERVE_PID" "$dir/serve2.log.err" || return 1
    SERVE_PID=""
    grep -q '^store: persisted ' "$dir/serve2.log.err" || {
        echo "persist: drained server persisted no snapshot:" >&2
        grep '^store:' "$dir/serve2.log.err" >&2
        return 1
    }
    echo "persist: cold, fresh-durable, restart-warmed, and torn-log runs byte-identical; SIGKILLed server recovered $recovered entr$( [ "$recovered" = "1" ] && echo y || echo ies ) and served $hits/$pages re-driven pages from cache"
}

# Boot a briq-serve child, leaving its loopback address in SERVE_ADDR
# and its pid in SERVE_PID; logs go to $1 / $1.err. Must run in the
# current shell (not a subshell) so the globals survive. Fails if the
# listen line never appears.
boot_server() {
    local log="$1"
    shift
    ./target/release/briq-serve serve --addr 127.0.0.1:0 "$@" \
        > "$log" 2> "${log}.err" &
    SERVE_PID=$!
    SERVE_ADDR=""
    local tries=0
    while [ "$tries" -lt 200 ]; do
        SERVE_ADDR="$(sed -n 's/^listening on //p' "$log" | head -1)"
        [ -n "$SERVE_ADDR" ] && return 0
        kill -0 "$SERVE_PID" 2>/dev/null || break
        sleep 0.05
        tries=$(( tries + 1 ))
    done
    echo "serve: server never printed its listen address" >&2
    return 1
}

# Stop the server at $1 (pid $2, stderr log $3) and require a clean
# drain: exit 0 plus the final drained-report line.
stop_server() {
    local addr="$1" pid="$2" errlog="$3" rc
    ./target/release/briq-serve stop --addr "$addr" || {
        echo "serve: stop request to $addr failed" >&2
        return 1
    }
    wait "$pid"
    rc=$?
    if [ "$rc" -ne 0 ]; then
        echo "serve: server at $addr exited $rc instead of draining cleanly" >&2
        tail -5 "$errlog" >&2
        return 1
    fi
    grep -q '^drained: ' "$errlog" || {
        echo "serve: server at $addr printed no drained report" >&2
        return 1
    }
    grep -q ' 0 panic(s)$' "$errlog" || {
        echo "serve: server at $addr reported panics:" >&2
        grep '^drained: ' "$errlog" >&2
        return 1
    }
}

stage_serve() {
    cargo build --offline --release -q -p briq-bench || return 1
    local dir rc_drive rc_batch
    dir="$(mktemp -d)"
    trap 'rm -rf "$dir"; [ -n "${SERVE_PID:-}" ] && kill "$SERVE_PID" 2>/dev/null' RETURN
    ./target/release/briq-align --gen-corpus "$dir/corpus" \
        --docs 12 --seed "$BENCH_SEED" || return 1

    # 1. Byte-identity: the wire path against the batch path over the
    # same pages (sorted, like briq-align's own --batch ordering).
    boot_server "$dir/serve.log" || return 1
    ./target/release/briq-serve drive --addr "$SERVE_ADDR" "$dir/corpus"/*.html \
        > "$dir/out_serve.json" 2> "$dir/drive.err"
    rc_drive=$?
    ./target/release/briq-align --json "$dir/corpus"/*.html \
        --diagnostics "$dir/diag_batch.jsonl" > "$dir/out_batch.json" 2> /dev/null
    rc_batch=$?
    if [ "$rc_drive" -ne "$rc_batch" ] || { [ "$rc_drive" -ne 0 ] && [ "$rc_drive" -ne 2 ]; }; then
        echo "serve: exit codes diverged or failed (drive: $rc_drive, batch: $rc_batch)" >&2
        return 1
    fi
    cmp -s "$dir/out_serve.json" "$dir/out_batch.json" || {
        echo "serve: wire output differs from briq-align --json" >&2
        diff "$dir/out_serve.json" "$dir/out_batch.json" | head -20 >&2
        return 1
    }

    # 2. Chaos against the healthy server: malformed JSONL, oversized
    # payloads, half-closed connections, slow writers, request floods.
    ./target/release/briq-serve chaos --addr "$SERVE_ADDR" \
        --connections 8 --requests 4 > /dev/null 2> "$dir/chaos.err" || {
        echo "serve: chaos invariants failed against the healthy server" >&2
        tail -10 "$dir/chaos.err" >&2
        return 1
    }
    stop_server "$SERVE_ADDR" "$SERVE_PID" "$dir/serve.log.err" || return 1
    SERVE_PID=""

    # 3. Overload: a 1-worker/1-deep server must shed deterministically
    # under the flood (chaos asserts zero panics, bounded queue depth,
    # and byte-identical shed lines; --expect-shed makes sheds required).
    boot_server "$dir/tiny.log" --workers 1 --queue-depth 1 || return 1
    ./target/release/briq-serve chaos --addr "$SERVE_ADDR" \
        --connections 12 --requests 6 --expect-shed \
        > /dev/null 2> "$dir/chaos_tiny.err" || {
        echo "serve: overload chaos failed against the constrained server" >&2
        tail -10 "$dir/chaos_tiny.err" >&2
        return 1
    }
    stop_server "$SERVE_ADDR" "$SERVE_PID" "$dir/tiny.log.err" || return 1
    SERVE_PID=""

    echo "serve: wire output byte-identical to batch ($(wc -c < "$dir/out_serve.json") bytes); chaos + overload clean, both servers drained"
}

known_stage() {
    local s
    for s in "${ALL_STAGES[@]}"; do
        [ "$s" = "$1" ] && return 0
    done
    return 1
}

if [ "${1:-}" = "help" ] || [ "${1:-}" = "--help" ]; then
    echo "usage: ./ci.sh [stage...]"
    echo "stages: ${ALL_STAGES[*]} (default: all)"
    exit 0
fi
# Machine-readable stage list: one name per line, nothing else, so
# tooling and pre-commit hooks can enumerate stages without parsing help.
if [ "${1:-}" = "--list" ]; then
    printf '%s\n' "${ALL_STAGES[@]}"
    exit 0
fi

STAGES=("$@")
if [ ${#STAGES[@]} -eq 0 ]; then
    STAGES=("${ALL_STAGES[@]}")
fi
for s in "${STAGES[@]}"; do
    if ! known_stage "$s"; then
        echo "unknown stage: $s (stages: ${ALL_STAGES[*]})" >&2
        exit 1
    fi
done

SUMMARY_NAMES=()
SUMMARY_TIMES=()
SUMMARY_RESULTS=()
FAILED=0

for s in "${STAGES[@]}"; do
    echo "==> $s"
    start=$SECONDS
    if "stage_${s//-/_}"; then
        result=ok
    else
        result=FAIL
        FAILED=1
    fi
    elapsed=$(( SECONDS - start ))
    SUMMARY_NAMES+=("$s")
    SUMMARY_TIMES+=("$elapsed")
    SUMMARY_RESULTS+=("$result")
    echo "<== $s: $result (${elapsed}s)"
done

echo
printf '%-14s %8s  %s\n' "stage" "seconds" "result"
printf '%-14s %8s  %s\n' "-----" "-------" "------"
total=0
for i in "${!SUMMARY_NAMES[@]}"; do
    printf '%-14s %8s  %s\n' "${SUMMARY_NAMES[$i]}" "${SUMMARY_TIMES[$i]}" "${SUMMARY_RESULTS[$i]}"
    total=$(( total + SUMMARY_TIMES[i] ))
done
printf '%-14s %8s\n' "total" "$total"

if [ "$FAILED" -ne 0 ]; then
    echo "CI FAILED"
    exit 1
fi
echo "CI OK"
