#!/usr/bin/env bash
# Offline CI gate for the BriQ workspace.
#
# Runs the release build, the full test suite (including the chaos
# fault-injection harness in tests/chaos.rs), and clippy with warnings
# denied. The hardened crates (briq-regex, briq-text, briq-table,
# briq-graph, briq-core) additionally deny `unwrap_used`/`expect_used`
# in non-test code via crate-level attributes, so clippy enforces the
# panic-free policy too.
set -euo pipefail
cd "$(dirname "$0")"

echo "==> cargo build --offline --release"
cargo build --offline --release

echo "==> cargo test --offline --workspace (includes chaos harness)"
cargo test --offline --workspace -q

echo "==> cargo clippy --offline --workspace -- -D warnings"
cargo clippy --offline --workspace -q -- -D warnings

echo "CI OK"
