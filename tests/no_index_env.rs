//! `BRIQ_NO_INDEX=1` must behave exactly like `cfg.use_index = false`:
//! same alignments, same statistics, and zero retrieval activity in the
//! stage timings. Kept as a single-test binary because it mutates the
//! process environment — sharing a binary with other tests would race
//! the env var across threads.

use briq_core::pipeline::{Briq, BriqConfig};
use briq_core::Budget;
use briq_corpus::corpus::{generate_corpus, CorpusConfig};

#[test]
fn env_hatch_matches_config_knob() {
    let briq = Briq::untrained(BriqConfig::default());
    let mut oracle = briq.clone();
    oracle.cfg.use_index = false;

    let docs = generate_corpus(&CorpusConfig {
        n_documents: 8,
        seed: 97,
        ..Default::default()
    })
    .documents;

    let budget = Budget::unlimited();
    let mut indexed_retrieved = 0u64;
    for ld in &docs {
        let doc = &ld.document;

        // Index on (the default): the stage must actually retrieve.
        let (al_on, _, t_on) = briq.align_timed(doc, &budget);
        indexed_retrieved += t_on.candidates_retrieved;

        // Env hatch on the same (indexed) config.
        std::env::set_var("BRIQ_NO_INDEX", "1");
        let (al_env, stats_env, cand_env) = briq.align_detailed(doc);
        let (_, _, t_env) = briq.align_timed(doc, &budget);
        std::env::remove_var("BRIQ_NO_INDEX");

        // Config knob off.
        let (al_cfg, stats_cfg, cand_cfg) = oracle.align_detailed(doc);

        assert_eq!(
            t_env.candidates_retrieved, 0,
            "doc {}: env hatch left the index engaged",
            doc.id
        );
        assert_eq!(
            t_env.pairs_skipped_retrieval, 0,
            "doc {}: env hatch recorded retrieval skips",
            doc.id
        );
        assert_eq!(
            format!("{al_env:?}"),
            format!("{al_cfg:?}"),
            "doc {}: env hatch and config knob disagree on alignments",
            doc.id
        );
        assert_eq!(stats_env, stats_cfg, "doc {}: stats disagree", doc.id);
        assert_eq!(
            format!("{cand_env:?}"),
            format!("{cand_cfg:?}"),
            "doc {}: candidates disagree",
            doc.id
        );
        // And both escape hatches must match the indexed output too —
        // the recall contract, exercised through the env path.
        assert_eq!(
            format!("{al_on:?}"),
            format!("{al_env:?}"),
            "doc {}: indexed and exhaustive alignments diverge",
            doc.id
        );
    }
    assert!(
        indexed_retrieved > 0,
        "index never retrieved a candidate across {} docs",
        docs.len()
    );
}
