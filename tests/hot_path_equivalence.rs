//! Bit-for-bit equivalence of the classifier hot path: the precomputed
//! [`PairFeaturizer`] + flat-forest scoring pipeline must reproduce the
//! naive reference path (`feature_vector` per pair, copy + mask +
//! recursive `predict_proba`) exactly — same f64 bits, not "close".
//!
//! Coverage: well-formed seeded corpus documents (>= 1000 pairs) and one
//! document per adversarial chaos family under a tight budget. The
//! batched engine (dedup cache + exact bound-based pruning, see
//! `briq_core::scoring`) is additionally held to the same standard
//! against the exhaustive score-everything reference and against itself
//! with pruning disabled (`BRIQ_NO_PRUNE=1`).

use briq_core::classifier::PairClassifier;
use briq_core::features::{feature_vector, FeatureMask, PairFeaturizer, FEATURE_COUNT};
use briq_core::pipeline::{
    heuristic_prior, heuristic_prior_masked, Briq, BriqConfig, ScoredDocument,
};
use briq_core::Budget;
use briq_corpus::corpus::{generate_corpus, CorpusConfig};
use briq_corpus::perturb::{adversarial_documents, Adversary};
use briq_ml::{Dataset, RandomForestConfig};
use rand::prelude::*;
use rand::rngs::StdRng;

/// Every mask combination the ablation study can request.
fn all_masks() -> Vec<FeatureMask> {
    let mut out = Vec::new();
    for surface in [false, true] {
        for context in [false, true] {
            for quantity in [false, true] {
                out.push(FeatureMask {
                    surface,
                    context,
                    quantity,
                });
            }
        }
    }
    out
}

/// Compare the featurizer against the naive per-pair reference on every
/// (mention, target) pair of `sd`, returning the number of pairs checked.
fn assert_featurizer_matches(sd: &ScoredDocument, scope: &str) -> usize {
    let mut fz = PairFeaturizer::new(&sd.mentions, &sd.targets, &sd.ctx);
    let mut row = [0.0f64; FEATURE_COUNT];
    let mut rows: Vec<f64> = Vec::new();
    let mut pairs = 0usize;
    for (mi, x) in sd.mentions.iter().enumerate() {
        fz.fill_mention_rows(mi, &mut rows);
        assert_eq!(rows.len(), sd.targets.len() * FEATURE_COUNT, "{scope}");
        for (ti, t) in sd.targets.iter().enumerate() {
            let naive = feature_vector(x, t, &sd.ctx);
            fz.fill(mi, ti, &mut row);
            let batch = &rows[ti * FEATURE_COUNT..(ti + 1) * FEATURE_COUNT];
            for f in 0..FEATURE_COUNT {
                assert_eq!(
                    naive[f].to_bits(),
                    row[f].to_bits(),
                    "{scope}: fill() f{} mention {mi} target {ti}: {} vs {}",
                    f + 1,
                    naive[f],
                    row[f]
                );
                assert_eq!(
                    naive[f].to_bits(),
                    batch[f].to_bits(),
                    "{scope}: fill_mention_rows() f{} mention {mi} target {ti}",
                    f + 1
                );
            }
            pairs += 1;
        }
    }
    pairs
}

#[test]
fn featurizer_matches_naive_on_seeded_corpus() {
    let briq = Briq::untrained(BriqConfig::default());
    let corpus = generate_corpus(&CorpusConfig {
        n_documents: 24,
        seed: 20190408,
        ..Default::default()
    });
    let mut pairs = 0usize;
    for (i, ld) in corpus.documents.iter().enumerate() {
        let sd = briq.score_document(&ld.document);
        pairs += assert_featurizer_matches(&sd, &format!("corpus doc {i}"));
        if pairs >= 1000 && i >= 8 {
            break;
        }
    }
    assert!(
        pairs >= 1000,
        "only {pairs} pairs checked — corpus too small"
    );
}

#[test]
fn featurizer_matches_naive_on_chaos_documents() {
    let briq = Briq::untrained(BriqConfig::default());
    let budget = Budget {
        max_regex_steps: 10_000,
        max_virtual_cells_per_table: 120,
        max_graph_edges: 1_500,
        max_rwr_iterations: 40,
    };
    for kind in Adversary::ALL {
        for doc in adversarial_documents(kind, 20190408) {
            let (sd, _diag) = briq.score_document_budgeted(&doc, &budget);
            assert_featurizer_matches(&sd, kind.name());
        }
    }
}

#[test]
fn heuristic_prior_masked_matches_copy_mask_score() {
    let mut rng = StdRng::seed_from_u64(99);
    for mask in all_masks() {
        for _ in 0..200 {
            let row: Vec<f64> = (0..FEATURE_COUNT)
                .map(|_| rng.random_range(-1.0..2.0))
                .collect();
            let mut masked = row.clone();
            mask.apply(&mut masked);
            assert_eq!(
                heuristic_prior_masked(&row, &mask).to_bits(),
                heuristic_prior(&masked).to_bits(),
                "mask {mask:?} row {row:?}"
            );
        }
    }
}

#[test]
fn flat_classifier_matches_recursive_forest_on_every_mask() {
    let mut rng = StdRng::seed_from_u64(4242);
    let mut data = Dataset::new();
    for _ in 0..300 {
        let related = rng.random_bool(0.4);
        let mut row = vec![0.0; FEATURE_COUNT];
        for v in row.iter_mut() {
            *v = rng.random_range(0.0..1.0);
        }
        if related {
            row[0] = rng.random_range(0.6..1.0);
        }
        data.push(row, related);
    }
    data.apply_class_weights();
    let rf = RandomForestConfig {
        n_trees: 24,
        ..Default::default()
    };
    for mask in all_masks() {
        let clf = PairClassifier::train(&data, rf, mask);
        for _ in 0..150 {
            let row: Vec<f64> = (0..FEATURE_COUNT)
                .map(|_| rng.random_range(-0.5..1.5))
                .collect();
            let mut masked = row.clone();
            mask.apply(&mut masked);
            assert_eq!(
                clf.score(&row).to_bits(),
                clf.forest().predict_proba(&masked).to_bits(),
                "mask {mask:?}"
            );
        }
    }
}

/// Compare two per-mention candidate lists for bit-exact equality.
fn assert_candidates_bit_equal(
    a: &[Vec<briq_core::filtering::Candidate>],
    b: &[Vec<briq_core::filtering::Candidate>],
    scope: &str,
) {
    assert_eq!(a.len(), b.len(), "{scope}: mention count");
    for (mi, (ca, cb)) in a.iter().zip(b).enumerate() {
        assert_eq!(ca.len(), cb.len(), "{scope}: mention {mi} candidate count");
        for (x, y) in ca.iter().zip(cb) {
            assert_eq!(x.target, y.target, "{scope}: mention {mi}");
            assert_eq!(
                x.score.to_bits(),
                y.score.to_bits(),
                "{scope}: mention {mi} target {} score {} vs {}",
                x.target,
                x.score,
                y.score
            );
        }
    }
}

/// Compare two alignment lists for bit-exact equality (PartialEq on
/// `Alignment` compares scores by value; pin the bits too).
fn assert_alignments_bit_equal(
    a: &[briq_core::mention::Alignment],
    b: &[briq_core::mention::Alignment],
    scope: &str,
) {
    assert_eq!(a, b, "{scope}: alignments differ");
    for (x, y) in a.iter().zip(b) {
        assert_eq!(
            x.score.to_bits(),
            y.score.to_bits(),
            "{scope}: score bits differ for {:?}",
            x.mention_raw
        );
    }
}

#[test]
fn pruned_path_matches_exhaustive_filtering() {
    // The dedup + bound-based-pruning engine on the alignment hot path
    // must be unobservable: identical filtering survivors (same targets,
    // same f64 bits), identical stats, identical final alignments —
    // against both the exhaustive `score_document` + `filter` reference
    // and the engine with pruning switched off via BRIQ_NO_PRUNE=1.
    // A trained classifier so bound-based pruning actually engages (the
    // untrained heuristic path only dedups).
    let corpus = generate_corpus(&CorpusConfig {
        n_documents: 40,
        seed: 20190408,
        ..Default::default()
    });
    let mut docs = corpus.documents;
    briq_corpus::annotate::annotate(
        &mut docs,
        &briq_corpus::annotate::AnnotatorConfig::default(),
    );
    let split = briq_ml::split::random_split(docs.len(), 0.15, 0.25, 1);
    let train: Vec<_> = split.train.iter().map(|&i| docs[i].clone()).collect();
    let val: Vec<_> = split.validation.iter().map(|&i| docs[i].clone()).collect();
    let cfg = BriqConfig {
        forest: RandomForestConfig {
            n_trees: 24,
            ..Default::default()
        },
        tagger_forest: RandomForestConfig {
            n_trees: 12,
            ..Default::default()
        },
        ..Default::default()
    };
    let briq = Briq::train(cfg, &train, &val);
    assert!(briq.is_trained());

    let mut pairs = 0usize;
    let mut saved = 0u64;
    for (i, ld) in docs.iter().enumerate() {
        let scope = format!("corpus doc {i}");
        let doc = &ld.document;

        // Exhaustive reference: full score matrix, then the filter.
        let sd = briq.score_document(doc);
        pairs += sd.mentions.len() * sd.targets.len();
        let (cand_ref, stats_ref) = briq.filter(&sd);

        // Hot path with pruning on (default), then off.
        let (al_on, stats_on, cand_on) = briq.align_detailed(doc);
        std::env::set_var("BRIQ_NO_PRUNE", "1");
        let (al_off, stats_off, cand_off) = briq.align_detailed(doc);
        std::env::remove_var("BRIQ_NO_PRUNE");

        assert_candidates_bit_equal(&cand_on, &cand_ref, &format!("{scope} on-vs-ref"));
        assert_candidates_bit_equal(&cand_on, &cand_off, &format!("{scope} on-vs-off"));
        assert_eq!(stats_on, stats_ref, "{scope}: stats on-vs-ref");
        assert_eq!(stats_on, stats_off, "{scope}: stats on-vs-off");
        assert_alignments_bit_equal(&al_on, &al_off, &scope);

        // The engine must actually be saving work somewhere in the run.
        let (_, _, timings) = briq.align_timed(doc, &Budget::unlimited());
        saved += timings.rows_deduped + timings.pairs_pruned;
    }
    assert!(pairs >= 1000, "only {pairs} pairs exercised");
    assert!(
        saved > 0,
        "dedup + pruning never engaged over {pairs} pairs"
    );

    // Every adversarial chaos family, under the tight budget: pruning
    // on/off must stay byte-identical even on degraded documents.
    let budget = Budget {
        max_regex_steps: 10_000,
        max_virtual_cells_per_table: 120,
        max_graph_edges: 1_500,
        max_rwr_iterations: 40,
    };
    for kind in Adversary::ALL {
        for doc in adversarial_documents(kind, 20190408) {
            let (al_on, _) = briq.align_checked_with(&doc, &budget);
            std::env::set_var("BRIQ_NO_PRUNE", "1");
            let (al_off, _) = briq.align_checked_with(&doc, &budget);
            std::env::remove_var("BRIQ_NO_PRUNE");
            assert_alignments_bit_equal(&al_on, &al_off, kind.name());
        }
    }
}

#[test]
fn end_to_end_scores_match_naive_recomputation() {
    // The pipeline's own scored matrix (built through the featurizer)
    // must equal scoring naive vectors through the masked prior.
    let briq = Briq::untrained(BriqConfig::default());
    let corpus = generate_corpus(&CorpusConfig {
        n_documents: 6,
        seed: 7,
        ..Default::default()
    });
    for ld in &corpus.documents {
        let sd = briq.score_document(&ld.document);
        for (mi, x) in sd.mentions.iter().enumerate() {
            for (ti, t) in sd.targets.iter().enumerate() {
                let f = feature_vector(x, t, &sd.ctx);
                let expect = heuristic_prior_masked(&f, &briq.cfg.mask);
                let (target, got) = sd.scored[mi][ti];
                assert_eq!(target, ti);
                assert_eq!(got.to_bits(), expect.to_bits());
            }
        }
    }
}
