//! The retrieval index must be unobservable in output: for every
//! document, the indexed path (`use_index: true`, the default) and the
//! exhaustive oracle (`use_index: false`) must produce bit-identical
//! alignments, candidates, and filter statistics — same f64 bits, not
//! "close". This is the recall contract of `briq_core::retrieval`
//! (DESIGN.md §13) checked on real pipeline output.
//!
//! Coverage: seeded well-formed corpus documents, every adversarial
//! chaos family, and both the untrained heuristic prior and a trained
//! forest (the two scoring entry points have separate selected-path
//! implementations).

use briq_core::pipeline::{Briq, BriqConfig};
use briq_core::Budget;
use briq_corpus::corpus::{generate_corpus, CorpusConfig};
use briq_corpus::perturb::{adversarial_documents, Adversary};
use briq_table::Document;

/// Tight budget for adversarial documents (some families are quadratic
/// unbudgeted); identical for both paths, so degradation is symmetric.
fn adversarial_budget() -> Budget {
    Budget {
        max_regex_steps: 10_000,
        max_virtual_cells_per_table: 120,
        max_graph_edges: 1_500,
        max_rwr_iterations: 40,
    }
}

/// The same system with the index flipped off — identical model, so any
/// output difference is the index's fault alone.
fn without_index(briq: &Briq) -> Briq {
    let mut oracle = briq.clone();
    oracle.cfg.use_index = false;
    oracle
}

/// Assert bit-identical `align_detailed` output across the two paths.
/// Debug formatting prints f64s shortest-round-trip, so any bit drift
/// in a score (beyond NaN payloads, which filtering's total order would
/// surface as reordering anyway) fails the comparison.
fn assert_identical(briq: &Briq, oracle: &Briq, doc: &Document, label: &str) {
    let (a_idx, s_idx, c_idx) = briq.align_detailed(doc);
    let (a_ora, s_ora, c_ora) = oracle.align_detailed(doc);
    assert_eq!(
        format!("{a_idx:?}"),
        format!("{a_ora:?}"),
        "alignments diverge on {label} doc {}",
        doc.id
    );
    assert_eq!(
        format!("{c_idx:?}"),
        format!("{c_ora:?}"),
        "candidates diverge on {label} doc {}",
        doc.id
    );
    assert_eq!(
        s_idx, s_ora,
        "filter statistics diverge on {label} doc {}",
        doc.id
    );
}

#[test]
fn untrained_indexed_path_matches_oracle_on_corpus() {
    let briq = Briq::untrained(BriqConfig::default());
    assert!(briq.cfg.use_index, "index is the default path");
    let oracle = without_index(&briq);
    let docs = generate_corpus(&CorpusConfig {
        n_documents: 24,
        seed: 41,
        ..Default::default()
    })
    .documents;
    for ld in &docs {
        assert_identical(&briq, &oracle, &ld.document, "corpus");
    }
}

#[test]
fn untrained_indexed_path_matches_oracle_on_adversarial_families() {
    let briq = Briq::untrained(BriqConfig::default());
    let oracle = without_index(&briq);
    let budget = adversarial_budget();
    for kind in Adversary::ALL {
        for seed in [1u64, 2] {
            for doc in adversarial_documents(kind, seed) {
                let (a_idx, _) = briq.align_checked_with(&doc, &budget);
                let (a_ora, _) = oracle.align_checked_with(&doc, &budget);
                assert_eq!(
                    format!("{a_idx:?}"),
                    format!("{a_ora:?}"),
                    "alignments diverge on {kind:?} seed {seed} doc {}",
                    doc.id
                );
            }
        }
    }
}

#[test]
fn trained_indexed_path_matches_oracle() {
    let corpus = generate_corpus(&CorpusConfig::small(53));
    let docs = corpus.documents;
    let (train, rest) = docs.split_at(docs.len() * 2 / 3);
    let briq = Briq::train(BriqConfig::default(), train, rest);
    assert!(briq.is_trained());
    let oracle = without_index(&briq);
    for ld in &docs {
        assert_identical(&briq, &oracle, &ld.document, "trained corpus");
    }
    let budget = adversarial_budget();
    for kind in [
        Adversary::NonFiniteNumerics,
        Adversary::MixedLocale,
        Adversary::VirtualCellFanout,
    ] {
        for doc in adversarial_documents(kind, 5) {
            let (a_idx, _) = briq.align_checked_with(&doc, &budget);
            let (a_ora, _) = oracle.align_checked_with(&doc, &budget);
            assert_eq!(
                format!("{a_idx:?}"),
                format!("{a_ora:?}"),
                "alignments diverge on trained {kind:?} doc {}",
                doc.id
            );
        }
    }
}
