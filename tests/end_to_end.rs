//! Cross-crate integration tests: HTML page → segmentation → extraction →
//! classification → filtering → global resolution.

use briq::html::parse_page;
use briq::pipeline::{Briq, BriqConfig};
use briq::segment::{segment_page, SegmentConfig};
use briq::{Document, Table, TableMentionKind};

fn briq() -> Briq {
    Briq::untrained(BriqConfig::default())
}

#[test]
fn html_page_to_alignments() {
    let html = r#"
        <html><body>
        <p>A total of 123 patients reported side effects during the drug
        trials; depression was the most common, reported by 38 patients.</p>
        <table>
          <tr><th>side effects</th><th>male</th><th>female</th><th>total</th></tr>
          <tr><td>Rash</td><td>15</td><td>20</td><td>35</td></tr>
          <tr><td>Depression</td><td>13</td><td>25</td><td>38</td></tr>
          <tr><td>Hypertension</td><td>19</td><td>15</td><td>34</td></tr>
          <tr><td>Nausea</td><td>5</td><td>6</td><td>11</td></tr>
          <tr><td>Eye Disorders</td><td>2</td><td>3</td><td>5</td></tr>
        </table>
        </body></html>"#;
    let page = parse_page(html);
    assert_eq!(page.paragraphs.len(), 1);
    assert_eq!(page.tables.len(), 1);

    let docs = segment_page(&page, &SegmentConfig::default(), 0);
    assert_eq!(docs.len(), 1, "paragraph must relate to its table");

    let alignments = briq().align(&docs[0]);
    // "38 patients" → the Depression/total cell.
    let a38 = alignments
        .iter()
        .find(|a| a.mention_raw.starts_with("38"))
        .expect("38 aligned");
    assert_eq!(a38.target.kind, TableMentionKind::SingleCell);
    assert_eq!(a38.target.cells, vec![(2, 3)]);
    // "total of 123" → the column-sum virtual cell.
    let a123 = alignments
        .iter()
        .find(|a| a.mention_raw.starts_with("123"))
        .expect("123 aligned");
    assert!(a123.target.is_aggregate());
    assert_eq!(a123.target.value, 123.0);
    assert_eq!(a123.target.cells.len(), 5);
}

#[test]
fn rotated_table_with_scale_suffix() {
    // Fig. 1b: "37K EUR" must reach the cell holding 36900.
    let doc = Document::new(
        0,
        "The A3 e-tron is the least affordable option with 37K EUR in Germany.",
        vec![Table::from_grid(
            "",
            vec![
                vec!["".into(), "Focus E".into(), "A3".into(), "VW Golf".into()],
                vec![
                    "German MSRP".into(),
                    "34900".into(),
                    "36900".into(),
                    "33800".into(),
                ],
                vec![
                    "American MSRP".into(),
                    "29120".into(),
                    "38900".into(),
                    "29915".into(),
                ],
            ],
        )],
    );
    let alignments = briq().align(&doc);
    let a = alignments
        .iter()
        .find(|a| a.mention_raw.contains("37K"))
        .expect("37K aligned");
    assert_eq!(a.target.value, 36900.0);
    assert_eq!(a.target.cells, vec![(1, 2)]);
}

#[test]
fn caption_scale_bridges_magnitudes() {
    // "(in Mio)" caption: "$3.26 billion" ↔ cell "3,263".
    let doc = Document::new(
        0,
        "Revenue of $3.26 billion was up strongly from the previous year.",
        vec![Table::from_grid(
            "Income gains (in Mio)",
            vec![
                vec!["".into(), "2013".into(), "2012".into()],
                vec!["Total Revenue".into(), "3,263".into(), "3,193".into()],
                vec!["Income".into(), "890".into(), "876".into()],
            ],
        )],
    );
    let alignments = briq().align(&doc);
    let a = alignments
        .iter()
        .find(|a| a.mention_raw.contains("3.26"))
        .expect("3.26 billion aligned");
    assert_eq!(a.target.cells, vec![(1, 1)]);
    assert_eq!(a.target.value, 3.263e9);
}

#[test]
fn coupled_quantities_resolve_jointly() {
    // Fig. 3: ambiguous "11%" pulled into table 0 by its companions.
    let make = |caption: &str, sales_chg: &str, margin_new: &str, bps: &str| {
        Table::from_grid(
            caption,
            vec![
                vec![
                    "($ Millions)".into(),
                    "2Q A".into(),
                    "2Q B".into(),
                    "% Change".into(),
                ],
                vec!["Sales".into(), "900".into(), "947".into(), sales_chg.into()],
                vec![
                    "Segment Profit".into(),
                    "114".into(),
                    "126".into(),
                    "11%".into(),
                ],
                vec![
                    "Segment Margin".into(),
                    "12.7%".into(),
                    margin_new.into(),
                    bps.into(),
                ],
            ],
        )
    };
    let doc = Document::new(
        0,
        "Sales were up 5% compared with the second quarter. Segment profit \
         was up 11% and segment margins increased 60 bps to 13.3%.",
        vec![
            make("Transportation", "5%", "13.3%", "60 bps"),
            make("Automation", "3%", "14.4%", "110 bps"),
        ],
    );
    let alignments = briq().align(&doc);
    let a11 = alignments
        .iter()
        .find(|a| a.mention_raw.starts_with("11"))
        .expect("11% aligned");
    assert_eq!(
        a11.target.table, 0,
        "joint inference must pick table 0: {alignments:?}"
    );
}

#[test]
fn unalignable_text_left_out() {
    let doc = Document::new(
        0,
        "The briefing lasted 45 minutes and drew 350 visitors.",
        vec![Table::from_grid(
            "",
            vec![
                vec!["metric".into(), "value".into()],
                vec!["Revenue".into(), "98,214".into()],
                vec!["Costs".into(), "55,021".into()],
            ],
        )],
    );
    let alignments = briq().align(&doc);
    // Values 45 and 350 are nowhere near the table values; the mapping is
    // partial (§II-A) and nothing should be force-aligned.
    assert!(alignments.is_empty(), "{alignments:?}");
}

#[test]
fn alignment_is_deterministic() {
    let doc = Document::new(
        0,
        "Depression was reported by 38 patients and rash by 35 patients.",
        vec![Table::from_grid(
            "",
            vec![
                vec!["effect".into(), "patients".into()],
                vec!["Rash".into(), "35".into()],
                vec!["Depression".into(), "38".into()],
            ],
        )],
    );
    let b = briq();
    let a1 = b.align(&doc);
    let a2 = b.align(&doc);
    assert_eq!(a1, a2);
}
