//! Proof that per-mention candidate retrieval performs zero heap
//! allocations once the index is built and the scratch is warmed: a
//! counting global allocator wraps the system allocator, and after one
//! warm-up sweep (which sizes the reusable near/far vectors) a full
//! retrieval sweep over every mention must allocate nothing. Building
//! the index allocates, querying it must not — that is what makes the
//! per-mention cost bounded by the candidate set, not the index.
//!
//! One `#[test]` only: the counter is process-global, and a second
//! concurrently-running test would pollute it.

use briq_core::pipeline::{Briq, BriqConfig};
use briq_core::retrieval::{CandidateIndex, RetrievalScratch};
use briq_corpus::corpus::{generate_corpus, CorpusConfig};
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicUsize, Ordering};

static ALLOCATIONS: AtomicUsize = AtomicUsize::new(0);

struct CountingAllocator;

unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static GLOBAL: CountingAllocator = CountingAllocator;

fn allocations() -> usize {
    ALLOCATIONS.load(Ordering::Relaxed)
}

#[test]
fn retrieval_sweep_is_allocation_free_after_build() {
    let briq = Briq::untrained(BriqConfig::default());
    let corpus = generate_corpus(&CorpusConfig {
        n_documents: 4,
        seed: 23,
        ..Default::default()
    });
    let sd = corpus
        .documents
        .iter()
        .map(|ld| briq.score_document(&ld.document))
        .max_by_key(|sd| sd.mentions.len() * sd.targets.len())
        .expect("non-empty corpus");
    assert!(
        sd.mentions.len() >= 3 && sd.targets.len() >= 20,
        "need a real workload, got {} mentions x {} targets",
        sd.mentions.len(),
        sd.targets.len()
    );

    // Build allocates (postings, bucket arrays); that's the once-per-
    // document cost and is not under test.
    let index = CandidateIndex::build(&sd.targets, briq.cfg.filter.value_diff_threshold);
    let mut scratch = RetrievalScratch::default();

    // Warm-up sweep: grows near/far to their high-water marks.
    let sweep = |scratch: &mut RetrievalScratch| {
        let mut total = 0usize;
        for (mi, mention) in sd.mentions.iter().enumerate() {
            index.retrieve(
                mention.quantity.value,
                mention.quantity.unit,
                &sd.tags[mi],
                scratch,
            );
            total += scratch.retrieved();
        }
        total
    };
    let warm = sweep(&mut scratch);
    assert!(warm > 0, "index retrieved nothing across the sweep");

    let before = allocations();
    let hot = sweep(&mut scratch);
    let after = allocations();

    assert_eq!(
        after - before,
        0,
        "hot retrieval sweep allocated {} times over {} mentions",
        after - before,
        sd.mentions.len()
    );
    assert_eq!(warm, hot, "sweeps must be deterministic");
}
