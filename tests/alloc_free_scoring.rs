//! Proof that per-pair scoring performs zero heap allocations: a counting
//! global allocator wraps the system allocator, and after one warm-up
//! pass (which sizes the reused row matrix and scratch buffers) a full
//! scoring sweep over every mention/target pair must allocate nothing —
//! for both the untrained heuristic prior and a trained flat forest.
//!
//! One `#[test]` only: the counter is process-global, and a second
//! concurrently-running test would pollute it.

use briq_core::classifier::PairClassifier;
use briq_core::features::{FeatureMask, PairFeaturizer, FEATURE_COUNT};
use briq_core::pipeline::{heuristic_prior_masked, Briq, BriqConfig};
use briq_corpus::corpus::{generate_corpus, CorpusConfig};
use briq_ml::{Dataset, RandomForestConfig};
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicUsize, Ordering};

static ALLOCATIONS: AtomicUsize = AtomicUsize::new(0);

struct CountingAllocator;

unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static GLOBAL: CountingAllocator = CountingAllocator;

fn allocations() -> usize {
    ALLOCATIONS.load(Ordering::Relaxed)
}

#[test]
fn scoring_sweep_is_allocation_free_after_warmup() {
    let briq = Briq::untrained(BriqConfig::default());
    let corpus = generate_corpus(&CorpusConfig {
        n_documents: 4,
        seed: 11,
        ..Default::default()
    });
    let sd = corpus
        .documents
        .iter()
        .map(|ld| briq.score_document(&ld.document))
        .max_by_key(|sd| sd.mentions.len() * sd.targets.len())
        .expect("non-empty corpus");
    let pairs = sd.mentions.len() * sd.targets.len();
    assert!(pairs > 100, "need a real workload, got {pairs} pairs");

    // Train a small forest so the flat-forest path is exercised too.
    let clf = {
        use rand::prelude::*;
        let mut rng = rand::rngs::StdRng::seed_from_u64(3);
        let mut data = Dataset::new();
        for _ in 0..200 {
            let related = rng.random_bool(0.4);
            let mut row = vec![0.0; FEATURE_COUNT];
            for v in row.iter_mut() {
                *v = rng.random_range(0.0..1.0);
            }
            data.push(row, related);
        }
        data.apply_class_weights();
        PairClassifier::train(
            &data,
            RandomForestConfig {
                n_trees: 16,
                ..Default::default()
            },
            FeatureMask::all(),
        )
    };

    // Featurizer construction and the first sweep may allocate: invariant
    // precomputation, the row matrix, and Jaro scratch growth.
    let mut fz = PairFeaturizer::new(&sd.mentions, &sd.targets, &sd.ctx);
    let mut rows: Vec<f64> = Vec::new();
    let sweep = |fz: &mut PairFeaturizer, rows: &mut Vec<f64>| {
        let mut acc = 0.0f64;
        for mi in 0..sd.mentions.len() {
            fz.fill_mention_rows(mi, rows);
            for row in rows.chunks_exact(FEATURE_COUNT) {
                acc += heuristic_prior_masked(row, &briq.cfg.mask);
                acc += clf.score(row);
            }
        }
        acc
    };
    let warm = sweep(&mut fz, &mut rows);

    let before = allocations();
    let hot = sweep(&mut fz, &mut rows);
    let after = allocations();

    assert_eq!(
        after - before,
        0,
        "hot scoring sweep allocated {} times over {pairs} pairs",
        after - before
    );
    assert_eq!(
        warm.to_bits(),
        hot.to_bits(),
        "sweeps must be deterministic"
    );
}
