//! Integration test: the full train/evaluate loop on a synthetic corpus.
//! Uses a reduced forest so the test stays fast in debug builds.

use briq::evaluate::EvalReport;
use briq::pipeline::{Briq, BriqConfig};
use briq::substrates::corpus::annotate::{annotate, AnnotatorConfig};
use briq::substrates::corpus::corpus::{generate_corpus, CorpusConfig};
use briq::substrates::ml::split::random_split;
use briq::substrates::ml::RandomForestConfig;

fn small_config() -> BriqConfig {
    BriqConfig {
        forest: RandomForestConfig {
            n_trees: 24,
            ..Default::default()
        },
        tagger_forest: RandomForestConfig {
            n_trees: 12,
            ..Default::default()
        },
        ..Default::default()
    }
}

#[test]
fn trained_briq_beats_chance_and_baselines_run() {
    let corpus = generate_corpus(&CorpusConfig {
        n_documents: 90,
        seed: 4243,
        ..Default::default()
    });
    let mut docs = corpus.documents;
    let outcome = annotate(&mut docs, &AnnotatorConfig::default());
    assert!(outcome.kappa > 0.4, "kappa {}", outcome.kappa);

    let split = random_split(docs.len(), 0.1, 0.1, 1);
    let train: Vec<_> = split.train.iter().map(|&i| docs[i].clone()).collect();
    let val: Vec<_> = split.validation.iter().map(|&i| docs[i].clone()).collect();
    let briq = Briq::train(small_config(), &train, &val);
    assert!(briq.is_trained());

    let mut report = EvalReport::default();
    let mut rf_report = EvalReport::default();
    for &i in &split.test {
        let ld = &docs[i];
        report.add_document(&briq.align(&ld.document), &ld.gold);
        let sd = briq.score_document(&ld.document);
        rf_report.add_document(&briq::baselines::rf_only_scored(&sd), &ld.gold);
    }
    let f1 = report.overall().f1;
    assert!(f1 > 0.25, "trained BriQ F1 {f1} too low");
    // BriQ's precision should not fall below the always-answering RF
    // baseline's precision.
    assert!(
        report.overall().precision >= rf_report.overall().precision,
        "BriQ precision {} < RF precision {}",
        report.overall().precision,
        rf_report.overall().precision
    );
}

#[test]
fn perturbed_variants_degrade_gracefully() {
    use briq::substrates::corpus::{perturb_document, Perturbation};

    let corpus = generate_corpus(&CorpusConfig {
        n_documents: 60,
        seed: 777,
        ..Default::default()
    });
    let docs = corpus.documents;
    let briq = Briq::untrained(small_config());

    let f1_for = |p: Perturbation| {
        let mut report = EvalReport::default();
        for ld in docs.iter().take(20) {
            let v = perturb_document(ld, p);
            report.add_document(&briq.align(&v.document), &v.gold);
        }
        report.overall().f1
    };
    let original = f1_for(Perturbation::Original);
    let truncated = f1_for(Perturbation::Truncated);
    assert!(original > 0.0);
    // Truncation must not *improve* quality.
    assert!(
        truncated <= original + 0.05,
        "original {original} truncated {truncated}"
    );
}

#[test]
fn tables_in_generated_corpus_reparse() {
    // Ground truth survives the HTML round trip.
    use briq::substrates::corpus::page::{render_page, table_to_html};
    let corpus = generate_corpus(&CorpusConfig {
        n_documents: 10,
        seed: 31,
        ..Default::default()
    });
    for ld in &corpus.documents {
        for t in &ld.document.tables {
            let html = table_to_html(t);
            let page = briq::html::parse_page(&html);
            let re = briq::Table::from_raw(&page.tables[0]);
            assert_eq!(re.quantity_count(), t.quantity_count());
        }
        let page_html = render_page(&[ld]);
        let page = briq::html::parse_page(&page_html);
        assert_eq!(page.paragraphs.len(), 1);
    }
}
