//! Fault-injection chaos harness: ≥1000 adversarial documents through the
//! budgeted `align_checked` path. The contract under test:
//!
//! * zero panics, no matter how hostile the page;
//! * every budget is respected (virtual cells per table, graph edges);
//! * every degraded item emits a structured diagnostic, and the
//!   diagnostics serialize as valid JSONL;
//! * clean documents produce alignments bit-identical to the classic
//!   unbudgeted `align`.

use briq::substrates::corpus::corpus::{generate_corpus, CorpusConfig};
use briq::substrates::corpus::perturb::{adversarial_documents, Adversary};
use briq::{
    align_batch, BatchConfig, Briq, BriqConfig, Budget, DegradedAction, Diagnostic, Document,
    Stage, Table, TableMentionKind,
};

/// Tight enough that the hostile families actually hit the caps.
fn chaos_budget() -> Budget {
    Budget {
        max_regex_steps: 10_000,
        max_virtual_cells_per_table: 120,
        max_graph_edges: 1_500,
        max_rwr_iterations: 40,
    }
}

#[test]
fn thousand_adversarial_documents_never_panic_and_respect_budgets() {
    let briq = Briq::untrained(BriqConfig::default());
    let budget = chaos_budget();

    let mut processed = 0usize;
    let mut degraded_docs = 0usize;
    let mut fanout_truncations = 0usize;
    let mut seed = 0u64;

    while processed < 1000 {
        for kind in Adversary::ALL {
            for doc in adversarial_documents(kind, seed) {
                let (alignments, diags) = briq.align_checked_with(&doc, &budget);
                for a in &alignments {
                    assert!(
                        a.score.is_finite(),
                        "{kind:?} seed {seed}: non-finite score"
                    );
                    assert!(a.mention_end <= doc.text.len());
                }
                if !diags.is_clean() {
                    degraded_docs += 1;
                    // Every diagnostic must serialize as one valid JSON
                    // object per line.
                    let jsonl = diags.to_jsonl();
                    assert_eq!(jsonl.lines().count(), diags.items.len());
                    for line in jsonl.lines() {
                        let d: Diagnostic = briq_json::from_str(line)
                            .unwrap_or_else(|e| panic!("bad JSONL {line:?}: {e:?}"));
                        assert!(!d.error.is_empty());
                        assert!(!d.scope.is_empty());
                    }
                }
                if kind == Adversary::VirtualCellFanout
                    && diags.items.iter().any(|d| {
                        d.stage == Stage::VirtualCells && d.action == DegradedAction::Truncated
                    })
                {
                    fanout_truncations += 1;
                }
                // Budget enforcement, verified on a sample to keep the
                // harness fast: the scored document never carries more
                // virtual cells per table than allowed.
                if processed.is_multiple_of(17) {
                    let (sd, _) = briq.score_document_budgeted(&doc, &budget);
                    for (ti, _) in doc.tables.iter().enumerate() {
                        let virtuals = sd
                            .targets
                            .iter()
                            .filter(|t| t.table == ti && t.kind != TableMentionKind::SingleCell)
                            .count();
                        assert!(
                            virtuals <= budget.max_virtual_cells_per_table,
                            "{kind:?} seed {seed}: {virtuals} virtual cells"
                        );
                    }
                }
                processed += 1;
            }
        }
        seed += 1;
    }

    assert!(processed >= 1000, "only {processed} documents");
    // The harness is only meaningful if the budgets actually bite.
    assert!(degraded_docs > 0, "no document ever degraded");
    assert!(
        fanout_truncations > 0,
        "fanout family never hit the virtual-cell budget"
    );
}

/// The batch engine under fire: every adversarial family, all in one
/// parallel batch. The pool must (a) never panic, (b) keep each hostile
/// document's degradation isolated to that document, and (c) return
/// results bit-identical to running `align_checked_with` sequentially —
/// for any worker count.
#[test]
fn adversarial_batch_is_deterministic_and_isolated() {
    let briq = Briq::untrained(BriqConfig::default());
    let budget = chaos_budget();

    let mut docs: Vec<Document> = Vec::new();
    for seed in 0..8 {
        for kind in Adversary::ALL {
            docs.extend(adversarial_documents(kind, seed));
        }
    }
    assert!(
        docs.len() >= 48,
        "only {} adversarial documents",
        docs.len()
    );

    let sequential: Vec<_> = docs
        .iter()
        .map(|d| briq.align_checked_with(d, &budget))
        .collect();

    for jobs in [1usize, 3, 8] {
        // Tracing on: recording is observation-only, so even the
        // adversarial batch must stay bit-identical to the untraced
        // sequential path below.
        let cfg = BatchConfig {
            jobs,
            chunk: 2,
            budget,
            trace: true,
        };
        let report = align_batch(&briq, &docs, &cfg);
        assert_eq!(report.documents.len(), docs.len());
        for (i, (dr, (alignments, diags))) in report.documents.iter().zip(&sequential).enumerate() {
            assert_eq!(dr.index, i, "jobs {jobs}: out of order");
            assert_eq!(
                &dr.alignments, alignments,
                "jobs {jobs} doc {i}: alignments diverged"
            );
            assert_eq!(
                &dr.diagnostics, diags,
                "jobs {jobs} doc {i}: diagnostics diverged"
            );
        }
        // The batch must degrade exactly where the sequential path does —
        // no more (cross-document contamination), no less (missed caps).
        let degraded: Vec<usize> = report
            .documents
            .iter()
            .filter(|d| !d.diagnostics.is_clean())
            .map(|d| d.index)
            .collect();
        let expected: Vec<usize> = sequential
            .iter()
            .enumerate()
            .filter(|(_, (_, diags))| !diags.is_clean())
            .map(|(i, _)| i)
            .collect();
        assert_eq!(degraded, expected, "jobs {jobs}");
        assert!(!degraded.is_empty(), "chaos batch never hit a budget");

        // The combined JSONL stream parses line-by-line and carries the
        // batch index prefix for attribution.
        let combined = report.combined_diagnostics();
        for line in combined.to_jsonl().lines() {
            let d: Diagnostic =
                briq_json::from_str(line).unwrap_or_else(|e| panic!("bad JSONL {line:?}: {e:?}"));
            assert!(
                d.scope.starts_with("doc "),
                "unattributed scope {:?}",
                d.scope
            );
        }
    }
}

#[test]
fn degenerate_tables_are_isolated_per_table() {
    let briq = Briq::untrained(BriqConfig::default());
    // One healthy table between two degenerate ones: the document must
    // still align against the healthy table, with one Skipped diagnostic
    // per degenerate table.
    let doc = Document::new(
        0,
        "Depression was reported by 38 patients in the trial.",
        vec![
            Table::from_grid("", Vec::new()),
            Table::from_grid(
                "",
                vec![
                    vec!["effect".into(), "total".into()],
                    vec!["Rash".into(), "35".into()],
                    vec!["Depression".into(), "38".into()],
                ],
            ),
            Table::from_grid("", vec![Vec::new(), Vec::new()]),
        ],
    );
    let (alignments, diags) = briq.align_checked(&doc);
    let skipped: Vec<&Diagnostic> = diags
        .items
        .iter()
        .filter(|d| d.stage == Stage::Extraction && d.action == DegradedAction::Skipped)
        .collect();
    assert_eq!(skipped.len(), 2, "{diags:?}");
    assert!(skipped.iter().any(|d| d.scope == "table 0"));
    assert!(skipped.iter().any(|d| d.scope == "table 2"));
    // Fault isolation: the healthy table still aligns.
    assert!(
        alignments
            .iter()
            .any(|a| a.target.table == 1 && a.mention_raw.starts_with("38")),
        "{alignments:?}"
    );
}

#[test]
fn clean_documents_align_bit_identically_under_checking() {
    let briq = Briq::untrained(BriqConfig::default());
    let corpus = generate_corpus(&CorpusConfig {
        n_documents: 40,
        seed: 99,
        ..Default::default()
    });
    let mut compared = 0usize;
    for ld in &corpus.documents {
        let plain = briq.align(&ld.document);
        // Default budget: generous caps that clean documents never hit.
        let (checked, diags) = briq.align_checked(&ld.document);
        assert_eq!(plain, checked, "doc {} diverged: {diags:?}", ld.document.id);
        // Unlimited budget: the exact same code path as `align`.
        let (unlimited, _) = briq.align_checked_with(&ld.document, &Budget::unlimited());
        assert_eq!(plain, unlimited, "doc {}", ld.document.id);
        compared += plain.len();
    }
    assert!(compared > 0, "corpus produced no alignments to compare");
}
