//! Property: the retrieval index never loses a pair that matters. For
//! any document — drawn from every adversarial perturbation family with
//! proptest-chosen seeds — every candidate the exhaustive oracle keeps
//! after filtering must have been in the index's retrieved set for that
//! mention. Recall over surviving pairs is exactly 1.0 by construction;
//! this test hunts for a counterexample.

use std::collections::BTreeSet;

use briq_core::pipeline::{Briq, BriqConfig};
use briq_core::retrieval::{CandidateIndex, RetrievalScratch};
use briq_core::Budget;
use briq_corpus::corpus::{generate_corpus, CorpusConfig};
use briq_corpus::perturb::{adversarial_documents, Adversary};
use briq_table::Document;
use proptest::prelude::*;

/// Check one document: retrieve per mention, then assert the oracle's
/// surviving candidates all came from the retrieved set.
fn assert_superset(briq: &Briq, doc: &Document, budget: &Budget, label: &str) {
    let (sd, _) = briq.score_document_budgeted(doc, budget);
    let theta = briq.cfg.filter.value_diff_threshold;
    let index = CandidateIndex::build(&sd.targets, theta);
    let (candidates, _) = briq.filter(&sd);
    let mut scratch = RetrievalScratch::default();
    for (mi, mention) in sd.mentions.iter().enumerate() {
        index.retrieve(
            mention.quantity.value,
            mention.quantity.unit,
            &sd.tags[mi],
            &mut scratch,
        );
        let retrieved: BTreeSet<usize> = scratch
            .near
            .iter()
            .chain(scratch.far.iter())
            .copied()
            .collect();
        for c in &candidates[mi] {
            assert!(
                retrieved.contains(&c.target),
                "{label} doc {} mention {mi}: surviving target {} (score {}) \
                 was not retrieved ({} of {} targets retrieved)",
                doc.id,
                c.target,
                c.score,
                retrieved.len(),
                sd.targets.len()
            );
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    /// Superset holds on every adversarial family at arbitrary seeds.
    #[test]
    fn retrieved_set_covers_surviving_pairs_adversarial(
        family in 0usize..Adversary::ALL.len(),
        seed in 0u64..10_000,
    ) {
        let kind = Adversary::ALL[family];
        let briq = Briq::untrained(BriqConfig::default());
        let budget = Budget {
            max_regex_steps: 10_000,
            max_virtual_cells_per_table: 120,
            max_graph_edges: 1_500,
            max_rwr_iterations: 40,
        };
        for doc in adversarial_documents(kind, seed) {
            assert_superset(&briq, &doc, &budget, &format!("{kind:?}"));
        }
    }

    /// And on well-formed corpus documents at arbitrary seeds.
    #[test]
    fn retrieved_set_covers_surviving_pairs_corpus(seed in 0u64..10_000) {
        let briq = Briq::untrained(BriqConfig::default());
        let docs = generate_corpus(&CorpusConfig {
            n_documents: 4,
            seed,
            ..Default::default()
        })
        .documents;
        let budget = Budget::unlimited();
        for ld in &docs {
            assert_superset(&briq, &ld.document, &budget, "corpus");
        }
    }
}
