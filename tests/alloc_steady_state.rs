//! Proof of the document arena's steady-state contract (DESIGN.md §14):
//! once a worker thread has aligned a document, re-aligning documents of
//! the same shape reuses the pooled scratch (scoring engine, retrieval
//! scratch, CSR walk buffers) and allocates only the per-document output
//! and featurizer state — the same count every run, strictly below the
//! cold run that had to grow everything. The warm CSR walk itself is
//! strictly allocation-free.
//!
//! One `#[test]` only: the counter is process-global, and a second
//! concurrently-running test would pollute it.

use briq_core::pipeline::{Briq, BriqConfig};
use briq_corpus::corpus::{generate_corpus, CorpusConfig};
use briq_graph::{CsrGraph, CsrScratch, Graph, RwrConfig};
use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::Cell;

// Per-thread counter: the libtest harness thread occasionally allocates
// (progress reporting) while the test body runs, so a process-global
// counter is flaky. `try_with` keeps allocation during TLS teardown from
// panicking — those allocations simply go uncounted.
thread_local! {
    static ALLOCATIONS: Cell<usize> = const { Cell::new(0) };
}

struct CountingAllocator;

unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        let _ = ALLOCATIONS.try_with(|c| c.set(c.get() + 1));
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        let _ = ALLOCATIONS.try_with(|c| c.set(c.get() + 1));
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static GLOBAL: CountingAllocator = CountingAllocator;

fn allocations() -> usize {
    ALLOCATIONS.with(Cell::get)
}

#[test]
fn arena_reaches_steady_state_and_warm_csr_walk_is_alloc_free() {
    // --- Warm CSR walk: strictly zero allocations. ---
    let mut g = Graph::new(12);
    for i in 0..11usize {
        g.add_edge(i, i + 1, 0.3 + 0.05 * i as f64);
        g.add_edge(i, (i * 7 + 3) % 12, 0.2);
    }
    let csr = CsrGraph::from_graph(&g);
    let cfg = RwrConfig::default();
    let mut scratch = CsrScratch::default();
    csr.walk_into(0, &cfg, &mut scratch)
        .expect("warm-up walk succeeds");
    let before = allocations();
    for start in 0..12 {
        csr.walk_into(start, &cfg, &mut scratch)
            .expect("warm walk succeeds");
    }
    let walk_allocs = allocations() - before;
    assert_eq!(
        walk_allocs, 0,
        "warm CSR walks allocated {walk_allocs} times"
    );

    // --- Arena steady state over full document alignment. ---
    // Full alignment still allocates per document (mention extraction,
    // featurizer invariants, the output itself), but with the arena the
    // count is identical from the second run on — the pooled engine,
    // retrieval scratch, and CSR buffers are re-taken at their grown
    // capacity, so nothing ratchets.
    let briq = Briq::untrained(BriqConfig::default());
    let corpus = generate_corpus(&CorpusConfig {
        n_documents: 3,
        seed: 17,
        ..Default::default()
    });
    let run = || {
        let before = allocations();
        let mut total = 0usize;
        for ld in &corpus.documents {
            total += briq.align(&ld.document).len();
        }
        (allocations() - before, total)
    };

    let (cold_allocs, cold_out) = run();
    let (warm1_allocs, warm1_out) = run();
    let (warm2_allocs, warm2_out) = run();

    assert_eq!(cold_out, warm1_out, "alignment output must be run-stable");
    assert_eq!(cold_out, warm2_out, "alignment output must be run-stable");
    assert_eq!(
        warm1_allocs, warm2_allocs,
        "steady-state runs must allocate identically (no per-run ratchet)"
    );
    assert!(
        warm1_allocs < cold_allocs,
        "arena reuse must beat the cold run: warm {warm1_allocs} vs cold {cold_allocs}"
    );
}
